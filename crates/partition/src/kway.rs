//! The multilevel k-way partitioner: HEM coarsening, recursive-bisection
//! initial partitioning of the coarsest graph, and boundary-greedy k-way
//! refinement during uncoarsening (the structure of MeTiS [15]).

use std::borrow::Cow;

use crate::bisect::bisect;
use crate::coarsen::coarsen_once;
use crate::graph::Graph;
use crate::knapsack::knapsack_partition_dual;
use crate::metrics::{
    combine_dual, dual_uniform, imbalance_dual, part_weights, partition_imbalance, weights_of,
};
use crate::rng::Rng;

/// Relative-load comparison under per-part ceilings in exact integer
/// arithmetic: `a/ca < b/cb  ⟺  a·cb < b·ca`. With uniform ceilings this is
/// exactly `a < b`, so the unweighted paths keep their historical behavior
/// bit-for-bit.
#[inline]
pub(crate) fn rel_lt(a: u64, ca: u64, b: u64, cb: u64) -> bool {
    (a as u128) * (cb as u128) < (b as u128) * (ca as u128)
}

/// Per-part weight ceilings. Uniform (`frac == None`) reproduces the
/// historical scalar `ceil(total/nparts · tol)`; capacity-weighted parts get
/// `ceil(total · frac_p · tol)`, never below 1 so a tiny-capacity part can
/// still hold a vertex.
pub(crate) fn part_ceilings(total: u64, cfg: &PartitionConfig, frac: Option<&[f64]>) -> Vec<u64> {
    match frac {
        None => {
            let m = (total as f64 / cfg.nparts as f64 * cfg.imbalance_tol).ceil() as u64;
            vec![m; cfg.nparts]
        }
        Some(f) => f
            .iter()
            .map(|&fr| ((total as f64 * fr * cfg.imbalance_tol).ceil() as u64).max(1))
            .collect(),
    }
}

/// Normalized capacity fractions, or `None` when the capacities are uniform —
/// in which case callers must take the unweighted integer path, which the
/// zero-chaos golden tests require to stay bit-exact.
pub(crate) fn capacity_fractions(caps: &[f64], nparts: usize) -> Option<Vec<f64>> {
    assert_eq!(caps.len(), nparts, "need one capacity per part");
    assert!(
        caps.iter().all(|c| c.is_finite() && *c > 0.0),
        "capacities must be finite and positive: {caps:?}"
    );
    if caps.iter().all(|&c| c == caps[0]) {
        return None;
    }
    let sum: f64 = caps.iter().sum();
    Some(caps.iter().map(|c| c / sum).collect())
}

/// Configuration for [`partition_kway`] and
/// [`crate::repart::repartition_kway`].
#[derive(Debug, Clone, Copy)]
pub struct PartitionConfig {
    /// Number of parts.
    pub nparts: usize,
    /// Allowed imbalance: max part weight ≤ `tol × average` (e.g. 1.05).
    pub imbalance_tol: f64,
    /// RNG seed (the partitioner is deterministic for a fixed seed).
    pub seed: u64,
    /// Stop coarsening once the graph has at most this many vertices
    /// (0 = auto: `max(128, 16 × nparts)`).
    pub coarsen_to: usize,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
}

impl PartitionConfig {
    /// Reasonable defaults for `nparts` parts.
    pub fn new(nparts: usize) -> Self {
        PartitionConfig {
            nparts,
            imbalance_tol: 1.05,
            seed: 0x9e37,
            coarsen_to: 0,
            refine_passes: 6,
        }
    }

    pub(crate) fn coarsen_target(&self) -> usize {
        if self.coarsen_to > 0 {
            self.coarsen_to
        } else {
            (16 * self.nparts).max(128)
        }
    }
}

/// Recursive bisection of `g` into `k` parts labelled `offset..offset+k`.
/// `frac`, when present, holds one capacity fraction per part; the split
/// target follows the capacity prefix sum instead of the vertex count.
fn recursive_bisect(
    g: &Graph,
    k: usize,
    offset: u32,
    tol: f64,
    rng: &mut Rng,
    out: &mut [u32],
    frac: Option<&[f64]>,
) {
    debug_assert_eq!(out.len(), g.n());
    if k == 1 {
        out.fill(offset);
        return;
    }
    let k0 = k / 2;
    let k1 = k - k0;
    let target0 = match frac {
        // The exact integer expression the unweighted partitioner has always
        // used — kept verbatim so uniform capacities stay bit-identical.
        None => g.total_vwgt() * k0 as u64 / k as u64,
        Some(f) => {
            let s0: f64 = f[..k0].iter().sum();
            let s: f64 = f.iter().sum();
            (g.total_vwgt() as f64 * (s0 / s)).round() as u64
        }
    };
    let side = bisect(g, target0, tol, 3, rng);
    let verts0: Vec<u32> = (0..g.n() as u32)
        .filter(|&v| side[v as usize] == 0)
        .collect();
    let verts1: Vec<u32> = (0..g.n() as u32)
        .filter(|&v| side[v as usize] == 1)
        .collect();
    let g0 = g.induced(&verts0);
    let g1 = g.induced(&verts1);
    let mut out0 = vec![0u32; g0.n()];
    let mut out1 = vec![0u32; g1.n()];
    recursive_bisect(&g0, k0, offset, tol, rng, &mut out0, frac.map(|f| &f[..k0]));
    recursive_bisect(
        &g1,
        k1,
        offset + k0 as u32,
        tol,
        rng,
        &mut out1,
        frac.map(|f| &f[k0..]),
    );
    for (i, &v) in verts0.iter().enumerate() {
        out[v as usize] = out0[i];
    }
    for (i, &v) in verts1.iter().enumerate() {
        out[v as usize] = out1[i];
    }
}

/// One pass of boundary-greedy k-way refinement: every vertex may move to
/// the adjacent part maximizing its connectivity gain, subject to the
/// balance constraint. Returns the number of moves.
pub(crate) fn kway_refine_pass(
    g: &Graph,
    part: &mut [u32],
    weights: &mut [u64],
    max_w: &[u64],
    rng: &mut Rng,
) -> usize {
    let nparts = weights.len();
    let mut order: Vec<u32> = (0..g.n() as u32).collect();
    rng.shuffle(&mut order);
    let mut conn = vec![0i64; nparts];
    let mut touched: Vec<u32> = Vec::new();
    let mut moves = 0;
    for &v in &order {
        let v = v as usize;
        let cur = part[v] as usize;
        touched.clear();
        let mut is_boundary = false;
        for (u, w) in g.edges(v) {
            let p = part[u as usize] as usize;
            if conn[p] == 0 {
                touched.push(p as u32);
            }
            conn[p] += w as i64;
            if p != cur {
                is_boundary = true;
            }
        }
        if is_boundary {
            let cur_conn = conn[cur];
            let overweight_here = weights[cur] > max_w[cur];
            let mut best: Option<(i64, usize)> = None;
            for &p in &touched {
                let p = p as usize;
                if p == cur {
                    continue;
                }
                let gain = conn[p] - cur_conn;
                let fits = weights[p] + g.vwgt[v] <= max_w[p];
                let acceptable = (gain > 0 && fits)
                    || (gain >= 0
                        && overweight_here
                        && rel_lt(weights[p] + g.vwgt[v], max_w[p], weights[cur], max_w[cur]));
                if acceptable && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, p));
                }
            }
            if let Some((_, p)) = best {
                part[v] = p as u32;
                weights[cur] -= g.vwgt[v];
                weights[p] += g.vwgt[v];
                moves += 1;
            }
        }
        for &p in &touched {
            conn[p as usize] = 0;
        }
    }
    moves
}

/// Forced balancing by boundary draining: sweep the vertices; every vertex
/// in an overweight part moves to its best under-loaded neighbouring part
/// (falling back to the globally lightest part so interior vertices cannot
/// deadlock the drain). Each sweep is `O(n + m)`; overweight regions drain
/// layer by layer, and the subsequent refinement passes repair the cut.
pub(crate) fn kway_balance(
    g: &Graph,
    part: &mut [u32],
    weights: &mut [u64],
    max_w: &[u64],
) -> usize {
    let nparts = weights.len();
    let mut moves = 0;
    for _sweep in 0..64 {
        if (0..nparts).all(|p| weights[p] <= max_w[p]) {
            break;
        }
        let mut moved_this_sweep = 0;
        for v in 0..g.n() {
            let s = part[v] as usize;
            if weights[s] <= max_w[s] {
                continue;
            }
            let vw = g.vwgt[v];
            // Best adjacent relatively-lighter part by connectivity.
            let mut best: Option<(i64, usize)> = None;
            for (u, w) in g.edges(v) {
                let p = part[u as usize] as usize;
                if p != s && rel_lt(weights[p] + vw, max_w[p], weights[s], max_w[s]) {
                    let gain = w as i64;
                    if best.is_none_or(|(bg, _)| gain > bg) {
                        best = Some((gain, p));
                    }
                }
            }
            let to = match best {
                Some((_, p)) => p,
                None => {
                    // Interior vertex of an overweight region: fall back to
                    // the relatively lightest part if that still helps.
                    let mut lightest = 0;
                    for p in 1..nparts {
                        if rel_lt(weights[p], max_w[p], weights[lightest], max_w[lightest]) {
                            lightest = p;
                        }
                    }
                    if !rel_lt(
                        weights[lightest] + vw,
                        max_w[lightest],
                        weights[s],
                        max_w[s],
                    ) {
                        continue;
                    }
                    lightest
                }
            };
            weights[s] -= vw;
            weights[to] += vw;
            part[v] = to as u32;
            moved_this_sweep += 1;
        }
        if moved_this_sweep == 0 {
            break;
        }
        moves += moved_this_sweep;
    }
    moves
}

/// Relative dual load of a part against its per-constraint ceilings: the
/// binding (worse) constraint's fill fraction. The dual paths never feed
/// the bit-exact single-constraint goldens — those delegate before reaching
/// this code — so f64 comparison is fine here.
#[inline]
fn dual_rel(w1: u64, m1: u64, w2: u64, m2: u64) -> f64 {
    (w1 as f64 / m1 as f64).max(w2 as f64 / m2 as f64)
}

/// Dual-constraint boundary drain: like [`kway_balance`], but a part is
/// overweight when *either* constraint exceeds its ceiling, and relative
/// comparisons use the binding constraint's fill fraction.
pub(crate) fn kway_balance_dual(
    g: &Graph,
    w2: &[u64],
    part: &mut [u32],
    wt1: &mut [u64],
    wt2: &mut [u64],
    max1: &[u64],
    max2: &[u64],
) -> usize {
    let nparts = wt1.len();
    let mut moves = 0;
    for _sweep in 0..64 {
        if (0..nparts).all(|p| wt1[p] <= max1[p] && wt2[p] <= max2[p]) {
            break;
        }
        let mut moved_this_sweep = 0;
        for v in 0..g.n() {
            let s = part[v] as usize;
            if wt1[s] <= max1[s] && wt2[s] <= max2[s] {
                continue;
            }
            let v1 = g.vwgt[v];
            let v2 = w2[v];
            let src = dual_rel(wt1[s], max1[s], wt2[s], max2[s]);
            // Best adjacent part that would still be relatively lighter.
            let mut best: Option<(i64, usize)> = None;
            for (u, w) in g.edges(v) {
                let p = part[u as usize] as usize;
                if p != s && dual_rel(wt1[p] + v1, max1[p], wt2[p] + v2, max2[p]) < src {
                    let gain = w as i64;
                    if best.is_none_or(|(bg, _)| gain > bg) {
                        best = Some((gain, p));
                    }
                }
            }
            let to = match best {
                Some((_, p)) => p,
                None => {
                    // Interior vertex of an overweight region: fall back to
                    // the relatively lightest part if that still helps.
                    let mut lightest = 0;
                    for p in 1..nparts {
                        if dual_rel(wt1[p], max1[p], wt2[p], max2[p])
                            < dual_rel(wt1[lightest], max1[lightest], wt2[lightest], max2[lightest])
                        {
                            lightest = p;
                        }
                    }
                    if dual_rel(
                        wt1[lightest] + v1,
                        max1[lightest],
                        wt2[lightest] + v2,
                        max2[lightest],
                    ) >= src
                    {
                        continue;
                    }
                    lightest
                }
            };
            wt1[s] -= v1;
            wt2[s] -= v2;
            wt1[to] += v1;
            wt2[to] += v2;
            part[v] = to as u32;
            moved_this_sweep += 1;
        }
        if moved_this_sweep == 0 {
            break;
        }
        moves += moved_this_sweep;
    }
    moves
}

/// One dual-constraint refinement pass: connectivity-gain moves that keep
/// *both* per-constraint ceilings (or strictly improve the binding fill of
/// an overweight source part).
#[allow(clippy::too_many_arguments)]
pub(crate) fn kway_refine_pass_dual(
    g: &Graph,
    w2: &[u64],
    part: &mut [u32],
    wt1: &mut [u64],
    wt2: &mut [u64],
    max1: &[u64],
    max2: &[u64],
    rng: &mut Rng,
) -> usize {
    let nparts = wt1.len();
    let mut order: Vec<u32> = (0..g.n() as u32).collect();
    rng.shuffle(&mut order);
    let mut conn = vec![0i64; nparts];
    let mut touched: Vec<u32> = Vec::new();
    let mut moves = 0;
    for &v in &order {
        let v = v as usize;
        let cur = part[v] as usize;
        touched.clear();
        let mut is_boundary = false;
        for (u, w) in g.edges(v) {
            let p = part[u as usize] as usize;
            if conn[p] == 0 {
                touched.push(p as u32);
            }
            conn[p] += w as i64;
            if p != cur {
                is_boundary = true;
            }
        }
        if is_boundary {
            let cur_conn = conn[cur];
            let overweight_here = wt1[cur] > max1[cur] || wt2[cur] > max2[cur];
            let v1 = g.vwgt[v];
            let v2 = w2[v];
            let mut best: Option<(i64, usize)> = None;
            for &p in &touched {
                let p = p as usize;
                if p == cur {
                    continue;
                }
                let gain = conn[p] - cur_conn;
                let fits = wt1[p] + v1 <= max1[p] && wt2[p] + v2 <= max2[p];
                let acceptable = (gain > 0 && fits)
                    || (gain >= 0
                        && overweight_here
                        && dual_rel(wt1[p] + v1, max1[p], wt2[p] + v2, max2[p])
                            < dual_rel(wt1[cur], max1[cur], wt2[cur], max2[cur]));
                if acceptable && best.is_none_or(|(bg, _)| gain > bg) {
                    best = Some((gain, p));
                }
            }
            if let Some((_, p)) = best {
                part[v] = p as u32;
                wt1[cur] -= v1;
                wt2[cur] -= v2;
                wt1[p] += v1;
                wt2[p] += v2;
                moves += 1;
            }
        }
        for &p in &touched {
            conn[p as usize] = 0;
        }
    }
    moves
}

/// Shared tail of the dual multilevel entry points: balance/refine rounds
/// on the true weight pair, then — when the graph moves alone cannot bring
/// the binding constraint near tolerance — fall back to the dual LPT
/// packing if that packing is strictly better. Balance beats locality at
/// that point, the same tradeoff as the repartitioner's fresh-partition
/// fallback; the fallback also gives the dual path an unconditional
/// per-constraint imbalance ceiling (the dual LPT greedy bound).
pub(crate) fn dual_repair(
    g: &Graph,
    w2: &[u64],
    cfg: &PartitionConfig,
    frac: Option<&[f64]>,
    caps: &[f64],
    mut part: Vec<u32>,
) -> Vec<u32> {
    let t2: u64 = w2.iter().sum();
    let max1: Vec<u64> = part_ceilings(g.total_vwgt(), cfg, frac)
        .iter()
        .map(|&m| m.max(1))
        .collect();
    let max2: Vec<u64> = part_ceilings(t2, cfg, frac)
        .iter()
        .map(|&m| m.max(1))
        .collect();
    let mut wt1 = part_weights(g, &part, cfg.nparts);
    let mut wt2 = weights_of(w2, &part, cfg.nparts);
    let mut rng = Rng::new(cfg.seed ^ 0x4475_616c); // "Dual"
    for _ in 0..4 {
        kway_balance_dual(g, w2, &mut part, &mut wt1, &mut wt2, &max1, &max2);
        for _ in 0..cfg.refine_passes {
            if kway_refine_pass_dual(g, w2, &mut part, &mut wt1, &mut wt2, &max1, &max2, &mut rng)
                == 0
            {
                break;
            }
        }
        if wt1.iter().zip(&max1).all(|(&w, &m)| w <= m)
            && wt2.iter().zip(&max2).all(|(&w, &m)| w <= m)
        {
            break;
        }
    }
    let achieved = imbalance_dual(&wt1, &wt2, caps);
    if achieved > cfg.imbalance_tol * 1.10 {
        let knap = knapsack_partition_dual(&g.vwgt, w2, cfg.nparts, caps);
        let kimb = imbalance_dual(
            &weights_of(&g.vwgt, &knap, cfg.nparts),
            &weights_of(w2, &knap, cfg.nparts),
            caps,
        );
        if kimb < achieved {
            return knap;
        }
    }
    part
}

/// Borrow `g`'s topology with the combined (totals-normalized) dual weight
/// as the vertex weight — the seed graph for the dual multilevel paths.
pub(crate) fn combined_view<'a>(g: &'a Graph, w2: &[u64]) -> Graph<'a> {
    Graph {
        xadj: Cow::Borrowed(g.xadj.as_ref()),
        adjncy: Cow::Borrowed(g.adjncy.as_ref()),
        adjwgt: Cow::Borrowed(g.adjwgt.as_ref()),
        vwgt: Cow::Owned(combine_dual(&g.vwgt, w2)),
    }
}

/// Dual-constraint multilevel k-way partition: the multilevel kernel runs
/// on the combined totals-normalized weight (so the cut-aware machinery
/// sees one scalar field), then [`dual_repair`] balances the true weight
/// pair under the max-of-imbalances objective. A uniform second weight
/// vector delegates to [`partition_kway_weighted`] bit-exactly.
pub fn partition_kway_dual(g: &Graph, w2: &[u64], cfg: &PartitionConfig, caps: &[f64]) -> Vec<u32> {
    assert_eq!(w2.len(), g.n(), "one second weight per vertex");
    if dual_uniform(w2) {
        return partition_kway_weighted(g, cfg, caps);
    }
    if cfg.nparts == 1 {
        return vec![0; g.n()];
    }
    let frac = capacity_fractions(caps, cfg.nparts);
    let part = partition_kway_impl(&combined_view(g, w2), cfg, frac.as_deref());
    dual_repair(g, w2, cfg, frac.as_deref(), caps, part)
}

/// Multilevel k-way partition of `g`. Returns the part assignment
/// (`0..nparts` per vertex).
pub fn partition_kway(g: &Graph, cfg: &PartitionConfig) -> Vec<u32> {
    partition_kway_impl(g, cfg, None)
}

/// Capacity-weighted multilevel k-way partition: part `p` is assigned vertex
/// weight proportional to `caps[p]` (relative processor capacities, any
/// common scale). Uniform capacities delegate to [`partition_kway`] exactly,
/// so a chaos-free run is bit-identical to the unweighted partitioner.
pub fn partition_kway_weighted(g: &Graph, cfg: &PartitionConfig, caps: &[f64]) -> Vec<u32> {
    match capacity_fractions(caps, cfg.nparts) {
        None => partition_kway(g, cfg),
        Some(frac) => partition_kway_impl(g, cfg, Some(&frac)),
    }
}

pub(crate) fn partition_kway_impl(
    g: &Graph,
    cfg: &PartitionConfig,
    frac: Option<&[f64]>,
) -> Vec<u32> {
    assert!(cfg.nparts >= 1);
    if cfg.nparts == 1 {
        return vec![0; g.n()];
    }
    let mut rng = Rng::new(cfg.seed);

    // Coarsening phase.
    let mut levels: Vec<(Graph, Vec<u32>)> = Vec::new(); // (finer graph, cmap to coarser)
    let mut cur = g.clone();
    while cur.n() > cfg.coarsen_target() {
        let (coarse, cmap) = coarsen_once(&cur, &mut rng);
        // Stop if coarsening stalls (< 10% reduction).
        if coarse.n() as f64 > cur.n() as f64 * 0.95 {
            break;
        }
        levels.push((cur, cmap));
        cur = coarse;
    }

    // Initial partitioning of the coarsest graph.
    let mut part = vec![0u32; cur.n()];
    recursive_bisect(
        &cur,
        cfg.nparts,
        0,
        cfg.imbalance_tol,
        &mut rng,
        &mut part,
        frac,
    );

    // Uncoarsening with refinement.
    let max_w = part_ceilings(g.total_vwgt(), cfg, frac);
    let mut graph = cur;
    loop {
        let mut weights = part_weights(&graph, &part, cfg.nparts);
        kway_balance(&graph, &mut part, &mut weights, &max_w);
        for _ in 0..cfg.refine_passes {
            if kway_refine_pass(&graph, &mut part, &mut weights, &max_w, &mut rng) == 0 {
                break;
            }
        }
        match levels.pop() {
            Some((finer, cmap)) => {
                let mut fine_part = vec![0u32; finer.n()];
                for v in 0..finer.n() {
                    fine_part[v] = part[cmap[v] as usize];
                }
                part = fine_part;
                graph = finer;
            }
            None => break,
        }
    }
    part
}

/// Partition quality report.
#[derive(Debug, Clone)]
pub struct PartitionQuality {
    pub cut: u64,
    pub imbalance: f64,
    pub weights: Vec<u64>,
}

/// Evaluate a partition.
pub fn quality(g: &Graph, part: &[u32], nparts: usize) -> PartitionQuality {
    PartitionQuality {
        cut: crate::metrics::edge_cut(g, part),
        imbalance: partition_imbalance(g, part, nparts),
        weights: part_weights(g, part, nparts),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    pub(crate) fn grid3d(nx: usize, ny: usize, nz: usize) -> Graph<'static> {
        let id = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
        let n = nx * ny * nz;
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    if x > 0 {
                        adjncy.push(id(x - 1, y, z) as u32);
                    }
                    if x + 1 < nx {
                        adjncy.push(id(x + 1, y, z) as u32);
                    }
                    if y > 0 {
                        adjncy.push(id(x, y - 1, z) as u32);
                    }
                    if y + 1 < ny {
                        adjncy.push(id(x, y + 1, z) as u32);
                    }
                    if z > 0 {
                        adjncy.push(id(x, y, z - 1) as u32);
                    }
                    if z + 1 < nz {
                        adjncy.push(id(x, y, z + 1) as u32);
                    }
                    xadj.push(adjncy.len() as u32);
                }
            }
        }
        Graph::from_csr(xadj, adjncy, vec![1; n])
    }

    #[test]
    fn partitions_are_balanced() {
        let g = grid3d(12, 12, 12);
        for k in [2, 4, 7, 16] {
            let cfg = PartitionConfig::new(k);
            let part = partition_kway(&g, &cfg);
            let q = quality(&g, &part, k);
            assert!(
                q.imbalance <= cfg.imbalance_tol + 0.02,
                "k={k}: imbalance {}",
                q.imbalance
            );
            // Every part must be non-empty.
            assert!(q.weights.iter().all(|&w| w > 0), "k={k}: empty part");
        }
    }

    #[test]
    fn cut_is_much_better_than_random() {
        let g = grid3d(10, 10, 10);
        let k = 8;
        let part = partition_kway(&g, &PartitionConfig::new(k));
        let cut = quality(&g, &part, k).cut;
        // Random assignment cuts ~ (1-1/k) of all edges.
        let mut rng = Rng::new(123);
        let rand_part: Vec<u32> = (0..g.n()).map(|_| rng.below(k) as u32).collect();
        let rand_cut = quality(&g, &rand_part, k).cut;
        assert!(
            cut * 3 < rand_cut,
            "multilevel cut {cut} not ≪ random cut {rand_cut}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = grid3d(8, 8, 8);
        let cfg = PartitionConfig::new(4);
        assert_eq!(partition_kway(&g, &cfg), partition_kway(&g, &cfg));
    }

    #[test]
    fn single_part_is_trivial() {
        let g = grid3d(4, 4, 4);
        let part = partition_kway(&g, &PartitionConfig::new(1));
        assert!(part.iter().all(|&p| p == 0));
    }

    #[test]
    fn weighted_graph_balances_by_weight() {
        let mut g = grid3d(10, 10, 1);
        // One corner is 10× heavier.
        for v in 0..g.n() {
            let (x, y) = (v % 10, v / 10);
            if x < 5 && y < 5 {
                g.vwgt.to_mut()[v] = 10;
            }
        }
        let k = 4;
        let part = partition_kway(&g, &PartitionConfig::new(k));
        let q = quality(&g, &part, k);
        assert!(
            q.imbalance <= 1.12,
            "imbalance {} with heavy corner",
            q.imbalance
        );
    }

    #[test]
    fn weighted_partition_tracks_capacities() {
        use crate::metrics::imbalance_weighted;
        let g = grid3d(12, 12, 12);
        let caps = [2.0, 1.0, 1.0, 1.0];
        let cfg = PartitionConfig::new(caps.len());
        let part = partition_kway_weighted(&g, &cfg, &caps);
        let w = part_weights(&g, &part, caps.len());
        let eff = imbalance_weighted(&w, &caps);
        assert!(
            eff <= cfg.imbalance_tol + 0.05,
            "capacity-weighted imbalance {eff} (weights {w:?})"
        );
        // The double-capacity part must actually carry close to 2× the load
        // of the others, i.e. ~2/5 of the total.
        let share = w[0] as f64 / g.total_vwgt() as f64;
        assert!(
            (share - 0.4).abs() < 0.05,
            "part 0 carries {share:.3} of the load, expected ≈0.4"
        );
    }

    #[test]
    fn uniform_capacities_are_bit_identical_to_unweighted() {
        let g = grid3d(8, 8, 8);
        let cfg = PartitionConfig::new(4);
        let plain = partition_kway(&g, &cfg);
        for c in [1.0, 2.5] {
            let caps = vec![c; 4];
            assert_eq!(partition_kway_weighted(&g, &cfg, &caps), plain);
        }
    }

    #[test]
    fn dual_partition_balances_both_constraints() {
        use crate::metrics::imbalance_weighted;
        let g = grid3d(10, 10, 1);
        // Second constraint (e.g. particles) packed into one corner, at a
        // granularity fine enough that a balanced split exists.
        let w2: Vec<u64> = (0..g.n() as u64)
            .map(|v| {
                let (x, y) = (v % 10, v / 10);
                if x < 5 && y < 5 {
                    8
                } else {
                    1
                }
            })
            .collect();
        let k = 4;
        let cfg = PartitionConfig::new(k);
        let caps = vec![1.0; k];
        // Single-constraint partitioning on w1 leaves w2 badly imbalanced.
        let single = partition_kway(&g, &cfg);
        let w2_single = imbalance_weighted(&weights_of(&w2, &single, k), &caps);
        assert!(w2_single > 1.5, "corner load should skew w2: {w2_single}");
        let dual = partition_kway_dual(&g, &w2, &cfg, &caps);
        let i1 = imbalance_weighted(&part_weights(&g, &dual, k), &caps);
        let i2 = imbalance_weighted(&weights_of(&w2, &dual, k), &caps);
        assert!(i1 <= 1.15, "dual w1 imbalance {i1}");
        assert!(i2 <= 1.15, "dual w2 imbalance {i2}");
    }

    #[test]
    fn dual_partition_reduces_to_weighted_when_uniform() {
        let g = grid3d(8, 8, 2);
        let cfg = PartitionConfig::new(4);
        for caps in [vec![1.0; 4], vec![2.0, 1.0, 1.0, 1.0]] {
            let single = partition_kway_weighted(&g, &cfg, &caps);
            for c in [1u64, 5] {
                let w2 = vec![c; g.n()];
                assert_eq!(partition_kway_dual(&g, &w2, &cfg, &caps), single);
            }
        }
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn weighted_partition_rejects_nonpositive_capacity() {
        let g = grid3d(4, 4, 1);
        partition_kway_weighted(&g, &PartitionConfig::new(2), &[1.0, 0.0]);
    }

    #[test]
    fn nparts_exceeding_vertices_leaves_no_crash() {
        let g = grid3d(2, 2, 1);
        let part = partition_kway(&g, &PartitionConfig::new(4));
        let q = quality(&g, &part, 4);
        assert_eq!(q.weights.iter().sum::<u64>(), 4);
    }
}
