//! Weighted undirected graphs in CSR form.

/// An undirected graph in compressed-sparse-row form with vertex and edge
/// weights — the input to the multilevel partitioner (the dual graph of the
/// initial mesh, in PLUM's case).
#[derive(Debug, Clone)]
pub struct Graph {
    /// Row offsets, `n + 1` entries.
    pub xadj: Vec<u32>,
    /// Adjacency lists (each undirected edge appears twice).
    pub adjncy: Vec<u32>,
    /// Edge weights, parallel to `adjncy`.
    pub adjwgt: Vec<u32>,
    /// Vertex weights.
    pub vwgt: Vec<u64>,
}

impl Graph {
    /// Build from CSR arrays with unit edge weights.
    pub fn from_csr(xadj: Vec<u32>, adjncy: Vec<u32>, vwgt: Vec<u64>) -> Self {
        let adjwgt = vec![1; adjncy.len()];
        let g = Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        };
        debug_assert!(g.check().is_ok(), "{:?}", g.check());
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbours of `v` with edge weights.
    #[inline]
    pub fn edges(&self, v: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.xadj[v] as usize;
        let hi = self.xadj[v + 1] as usize;
        self.adjncy[lo..hi]
            .iter()
            .copied()
            .zip(self.adjwgt[lo..hi].iter().copied())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.xadj[v + 1] - self.xadj[v]) as usize
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Structural validation: symmetry, no self loops, sizes consistent.
    pub fn check(&self) -> Result<(), String> {
        let n = self.n();
        if self.vwgt.len() != n {
            return Err(format!("vwgt len {} ≠ n {n}", self.vwgt.len()));
        }
        if self.adjwgt.len() != self.adjncy.len() {
            return Err("adjwgt/adjncy length mismatch".into());
        }
        if *self.xadj.last().unwrap() as usize != self.adjncy.len() {
            return Err("xadj end mismatch".into());
        }
        for v in 0..n {
            if self.xadj[v] > self.xadj[v + 1] {
                return Err(format!("xadj not monotone at {v}"));
            }
            for (u, w) in self.edges(v) {
                if u as usize == v {
                    return Err(format!("self loop at {v}"));
                }
                if u as usize >= n {
                    return Err(format!("edge {v}→{u} out of range"));
                }
                // Symmetric edge with identical weight must exist.
                if !self
                    .edges(u as usize)
                    .any(|(x, xw)| x as usize == v && xw == w)
                {
                    return Err(format!("edge {v}→{u} (w={w}) not symmetric"));
                }
            }
        }
        Ok(())
    }

    /// Build an induced subgraph on the vertex set `verts` (given in the
    /// order that defines the new ids). Returns the subgraph; edges to
    /// vertices outside the set are dropped.
    pub fn induced(&self, verts: &[u32]) -> Graph {
        let mut new_id = vec![u32::MAX; self.n()];
        for (i, &v) in verts.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let mut xadj = Vec::with_capacity(verts.len() + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::with_capacity(verts.len());
        xadj.push(0);
        for &v in verts {
            for (u, w) in self.edges(v as usize) {
                let nu = new_id[u as usize];
                if nu != u32::MAX {
                    adjncy.push(nu);
                    adjwgt.push(w);
                }
            }
            xadj.push(adjncy.len() as u32);
            vwgt.push(self.vwgt[v as usize]);
        }
        Graph {
            xadj,
            adjncy,
            adjwgt,
            vwgt,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3.
    pub(crate) fn path4() -> Graph {
        Graph::from_csr(
            vec![0, 1, 3, 5, 6],
            vec![1, 0, 2, 1, 3, 2],
            vec![1, 1, 1, 1],
        )
    }

    #[test]
    fn path_graph_structure() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        g.check().unwrap();
    }

    #[test]
    fn check_catches_asymmetry() {
        let g = Graph {
            xadj: vec![0, 1, 1],
            adjncy: vec![1],
            adjwgt: vec![1],
            vwgt: vec![1, 1],
        };
        assert!(g.check().is_err());
    }

    #[test]
    fn induced_subgraph_drops_external_edges() {
        let g = path4();
        let sub = g.induced(&[1, 2]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.m(), 1);
        sub.check().unwrap();
        // Vertex 1 had an edge to 0, which is outside: dropped.
        assert_eq!(sub.degree(0), 1);
    }
}
