//! Weighted undirected graphs in CSR form.

use std::borrow::Cow;

/// An undirected graph in compressed-sparse-row form with vertex and edge
/// weights — the input to the multilevel partitioner (the dual graph of the
/// initial mesh, in PLUM's case).
///
/// The CSR arrays are [`Cow`]s so a graph can either own its storage
/// ([`Graph::from_csr`], the coarsening products) or borrow it in place from
/// an existing structure such as `DualGraph` ([`Graph::view`]). The balance
/// loop runs every adaption cycle; borrowing the dual CSR instead of cloning
/// three arrays per cycle is what the [`GraphView`] alias exists for. All
/// partitioning entry points take `&Graph`, so both forms flow through the
/// same code; writes (only done by tests and benchmarks that perturb
/// weights) go through [`Cow::to_mut`].
#[derive(Debug, Clone)]
pub struct Graph<'a> {
    /// Row offsets, `n + 1` entries.
    pub xadj: Cow<'a, [u32]>,
    /// Adjacency lists (each undirected edge appears twice).
    pub adjncy: Cow<'a, [u32]>,
    /// Edge weights, parallel to `adjncy`.
    pub adjwgt: Cow<'a, [u32]>,
    /// Vertex weights.
    pub vwgt: Cow<'a, [u64]>,
}

/// A [`Graph`] that borrows its CSR arrays rather than owning them.
///
/// This is the no-copy path for per-cycle repartitioning: build one with
/// [`Graph::view`] over the dual graph's arrays and pass it anywhere a
/// `&Graph` is expected.
pub type GraphView<'a> = Graph<'a>;

impl<'a> Graph<'a> {
    /// Build an owning graph from CSR arrays with unit edge weights.
    pub fn from_csr(xadj: Vec<u32>, adjncy: Vec<u32>, vwgt: Vec<u64>) -> Graph<'static> {
        let adjwgt = vec![1; adjncy.len()];
        let g = Graph {
            xadj: Cow::Owned(xadj),
            adjncy: Cow::Owned(adjncy),
            adjwgt: Cow::Owned(adjwgt),
            vwgt: Cow::Owned(vwgt),
        };
        debug_assert!(g.check().is_ok(), "{:?}", g.check());
        g
    }

    /// Borrow CSR arrays in place (unit edge weights). No copies of the
    /// topology or vertex weights are made; only the unit `adjwgt` array is
    /// materialized.
    pub fn view(xadj: &'a [u32], adjncy: &'a [u32], vwgt: &'a [u64]) -> Graph<'a> {
        let g = Graph {
            xadj: Cow::Borrowed(xadj),
            adjncy: Cow::Borrowed(adjncy),
            adjwgt: Cow::Owned(vec![1; adjncy.len()]),
            vwgt: Cow::Borrowed(vwgt),
        };
        debug_assert!(g.check().is_ok(), "{:?}", g.check());
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.xadj.len() - 1
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        self.adjncy.len() / 2
    }

    /// Neighbours of `v` with edge weights.
    #[inline]
    pub fn edges(&self, v: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.xadj[v] as usize;
        let hi = self.xadj[v + 1] as usize;
        self.adjncy[lo..hi]
            .iter()
            .copied()
            .zip(self.adjwgt[lo..hi].iter().copied())
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.xadj[v + 1] - self.xadj[v]) as usize
    }

    /// Total vertex weight.
    pub fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().sum()
    }

    /// Structural validation: symmetry, no self loops, sizes consistent.
    pub fn check(&self) -> Result<(), String> {
        let n = self.n();
        if self.vwgt.len() != n {
            return Err(format!("vwgt len {} ≠ n {n}", self.vwgt.len()));
        }
        if self.adjwgt.len() != self.adjncy.len() {
            return Err("adjwgt/adjncy length mismatch".into());
        }
        if *self.xadj.last().unwrap() as usize != self.adjncy.len() {
            return Err("xadj end mismatch".into());
        }
        for v in 0..n {
            if self.xadj[v] > self.xadj[v + 1] {
                return Err(format!("xadj not monotone at {v}"));
            }
            for (u, w) in self.edges(v) {
                if u as usize == v {
                    return Err(format!("self loop at {v}"));
                }
                if u as usize >= n {
                    return Err(format!("edge {v}→{u} out of range"));
                }
                // Symmetric edge with identical weight must exist.
                if !self
                    .edges(u as usize)
                    .any(|(x, xw)| x as usize == v && xw == w)
                {
                    return Err(format!("edge {v}→{u} (w={w}) not symmetric"));
                }
            }
        }
        Ok(())
    }

    /// Build an induced subgraph on the vertex set `verts` (given in the
    /// order that defines the new ids). Returns the subgraph; edges to
    /// vertices outside the set are dropped.
    pub fn induced(&self, verts: &[u32]) -> Graph<'static> {
        let mut new_id = vec![u32::MAX; self.n()];
        for (i, &v) in verts.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let mut xadj = Vec::with_capacity(verts.len() + 1);
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::with_capacity(verts.len());
        xadj.push(0);
        for &v in verts {
            for (u, w) in self.edges(v as usize) {
                let nu = new_id[u as usize];
                if nu != u32::MAX {
                    adjncy.push(nu);
                    adjwgt.push(w);
                }
            }
            xadj.push(adjncy.len() as u32);
            vwgt.push(self.vwgt[v as usize]);
        }
        Graph {
            xadj: Cow::Owned(xadj),
            adjncy: Cow::Owned(adjncy),
            adjwgt: Cow::Owned(adjwgt),
            vwgt: Cow::Owned(vwgt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0-1-2-3.
    pub(crate) fn path4() -> Graph<'static> {
        Graph::from_csr(
            vec![0, 1, 3, 5, 6],
            vec![1, 0, 2, 1, 3, 2],
            vec![1, 1, 1, 1],
        )
    }

    #[test]
    fn path_graph_structure() {
        let g = path4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        g.check().unwrap();
    }

    #[test]
    fn check_catches_asymmetry() {
        let g = Graph {
            xadj: Cow::Owned(vec![0, 1, 1]),
            adjncy: Cow::Owned(vec![1]),
            adjwgt: Cow::Owned(vec![1]),
            vwgt: Cow::Owned(vec![1, 1]),
        };
        assert!(g.check().is_err());
    }

    #[test]
    fn view_borrows_without_copying_topology() {
        let xadj = vec![0u32, 1, 3, 5, 6];
        let adjncy = vec![1u32, 0, 2, 1, 3, 2];
        let vwgt = vec![2u64, 3, 4, 5];
        let v = Graph::view(&xadj, &adjncy, &vwgt);
        assert!(matches!(v.xadj, Cow::Borrowed(_)));
        assert!(matches!(v.adjncy, Cow::Borrowed(_)));
        assert!(matches!(v.vwgt, Cow::Borrowed(_)));
        assert_eq!(v.n(), 4);
        assert_eq!(v.m(), 3);
        assert_eq!(v.total_vwgt(), 14);
        v.check().unwrap();
        // The borrowed view sees exactly the same structure as the owned
        // graph built from clones of the same arrays.
        let owned = Graph::from_csr(xadj.clone(), adjncy.clone(), vwgt.clone());
        for vert in 0..v.n() {
            assert!(v.edges(vert).eq(owned.edges(vert)));
        }
    }

    #[test]
    fn induced_subgraph_drops_external_edges() {
        let g = path4();
        let sub = g.induced(&[1, 2]);
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.m(), 1);
        sub.check().unwrap();
        // Vertex 1 had an edge to 0, which is outside: dropped.
        assert_eq!(sub.degree(0), 1);
    }
}
