//! Bisection: greedy graph growing plus boundary Kernighan–Lin style
//! refinement — used for the initial partitioning of the coarsest graph
//! ("applies a greedy graph growing algorithm for partitioning the coarsest
//! graph").

use crate::graph::Graph;
use crate::rng::Rng;

/// Grow side 0 from a random seed vertex by BFS until its weight reaches
/// `target0`; everything else is side 1.
pub fn grow_bisection(g: &Graph, target0: u64, rng: &mut Rng) -> Vec<u8> {
    let n = g.n();
    let mut side = vec![1u8; n];
    if n == 0 {
        return side;
    }
    let mut w0 = 0u64;
    let mut queue = std::collections::VecDeque::new();
    let mut seen = vec![false; n];
    let seed = rng.below(n);
    queue.push_back(seed as u32);
    seen[seed] = true;
    while w0 < target0 {
        let v = match queue.pop_front() {
            Some(v) => v as usize,
            None => {
                // Disconnected graph: restart from an untouched vertex.
                match (0..n).find(|&v| !seen[v]) {
                    Some(v) => {
                        seen[v] = true;
                        queue.push_back(v as u32);
                        continue;
                    }
                    None => break,
                }
            }
        };
        side[v] = 0;
        w0 += g.vwgt[v];
        for (u, _) in g.edges(v) {
            if !seen[u as usize] {
                seen[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    side
}

/// Greedy boundary refinement of a bisection: repeatedly move boundary
/// vertices with positive gain (cut reduction) while respecting the balance
/// tolerance; then force balance if violated.
pub fn refine_bisection(
    g: &Graph,
    side: &mut [u8],
    target0: u64,
    tol: f64,
    passes: usize,
    rng: &mut Rng,
) {
    let total = g.total_vwgt();
    let target = [target0, total - target0];
    let max_w = [
        (target[0] as f64 * tol) as u64,
        (target[1] as f64 * tol) as u64,
    ];
    let mut w = [0u64; 2];
    for v in 0..g.n() {
        w[side[v] as usize] += g.vwgt[v];
    }

    let gain = |g: &Graph, side: &[u8], v: usize| -> i64 {
        let mut ext = 0i64;
        let mut int = 0i64;
        for (u, wt) in g.edges(v) {
            if side[u as usize] == side[v] {
                int += wt as i64;
            } else {
                ext += wt as i64;
            }
        }
        ext - int
    };

    let mut order: Vec<u32> = (0..g.n() as u32).collect();
    for _ in 0..passes {
        let mut moved = false;
        rng.shuffle(&mut order);
        for &v in &order {
            let v = v as usize;
            let s = side[v] as usize;
            let t = 1 - s;
            // Only boundary vertices can have positive gain.
            let gn = gain(g, side, v);
            let fits = w[t] + g.vwgt[v] <= max_w[t];
            let unbalanced_here = w[s] > max_w[s];
            if (gn > 0 && fits) || (gn >= 0 && unbalanced_here) {
                side[v] = t as u8;
                w[s] -= g.vwgt[v];
                w[t] += g.vwgt[v];
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    // Forced balancing: move least-damaging vertices out of an overweight side.
    let mut guard = g.n() * 4;
    while (w[0] > max_w[0] || w[1] > max_w[1]) && guard > 0 {
        guard -= 1;
        let s = if w[0] > max_w[0] { 0 } else { 1 };
        let t = 1 - s;
        let mut best: Option<(i64, usize)> = None;
        for v in 0..g.n() {
            if side[v] as usize == s {
                let gn = gain(g, side, v);
                if best.is_none_or(|(bg, _)| gn > bg) {
                    best = Some((gn, v));
                }
            }
        }
        match best {
            Some((_, v)) => {
                side[v] = t as u8;
                w[s] -= g.vwgt[v];
                w[t] += g.vwgt[v];
            }
            None => break,
        }
    }
}

/// Full bisection with multiple random starts, keeping the best cut.
pub fn bisect(g: &Graph, target0: u64, tol: f64, tries: usize, rng: &mut Rng) -> Vec<u8> {
    let mut best: Option<(u64, Vec<u8>)> = None;
    for _ in 0..tries.max(1) {
        let mut side = grow_bisection(g, target0, rng);
        refine_bisection(g, &mut side, target0, tol, 6, rng);
        let part: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        let cut = crate::metrics::edge_cut(g, &part);
        if best.as_ref().is_none_or(|(bc, _)| cut < *bc) {
            best = Some((cut, side));
        }
    }
    best.unwrap().1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{edge_cut, part_weights};

    fn grid_graph(w: usize, h: usize) -> Graph<'static> {
        let n = w * h;
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x > 0 {
                    adjncy.push((y * w + x - 1) as u32);
                }
                if x + 1 < w {
                    adjncy.push((y * w + x + 1) as u32);
                }
                if y > 0 {
                    adjncy.push(((y - 1) * w + x) as u32);
                }
                if y + 1 < h {
                    adjncy.push(((y + 1) * w + x) as u32);
                }
                xadj.push(adjncy.len() as u32);
            }
        }
        Graph::from_csr(xadj, adjncy, vec![1; n])
    }

    #[test]
    fn bisection_of_grid_is_balanced_and_cheap() {
        let g = grid_graph(12, 12);
        let total = g.total_vwgt();
        let mut rng = Rng::new(5);
        let side = bisect(&g, total / 2, 1.05, 4, &mut rng);
        let part: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        let w = part_weights(&g, &part, 2);
        assert!(
            w[0] as f64 <= total as f64 / 2.0 * 1.06,
            "side 0 overweight: {w:?}"
        );
        assert!(
            w[1] as f64 <= total as f64 / 2.0 * 1.06,
            "side 1 overweight: {w:?}"
        );
        // A 12x12 grid's optimal bisection cut is 12; allow some slack.
        let cut = edge_cut(&g, &part);
        assert!(cut <= 24, "cut {cut} far from optimal 12");
    }

    #[test]
    fn uneven_target_respected() {
        let g = grid_graph(10, 10);
        let total = g.total_vwgt();
        let target0 = total / 4;
        let mut rng = Rng::new(9);
        let side = bisect(&g, target0, 1.1, 4, &mut rng);
        let part: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        let w = part_weights(&g, &part, 2);
        assert!(
            (w[0] as f64) < target0 as f64 * 1.15 && (w[0] as f64) > target0 as f64 * 0.8,
            "side 0 weight {} far from target {target0}",
            w[0]
        );
    }

    #[test]
    fn weighted_vertices_balance_by_weight() {
        // Two heavy vertices and many light ones in a path.
        let n = 20;
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        for v in 0..n {
            if v > 0 {
                adjncy.push((v - 1) as u32);
            }
            if v + 1 < n {
                adjncy.push((v + 1) as u32);
            }
            xadj.push(adjncy.len() as u32);
        }
        let mut vwgt = vec![1u64; n];
        vwgt[0] = 50;
        vwgt[n - 1] = 50;
        let g = Graph::from_csr(xadj, adjncy, vwgt);
        let total = g.total_vwgt();
        let mut rng = Rng::new(11);
        let side = bisect(&g, total / 2, 1.1, 4, &mut rng);
        let part: Vec<u32> = side.iter().map(|&s| s as u32).collect();
        let w = part_weights(&g, &part, 2);
        // The two heavy vertices must be separated for any feasible balance.
        assert!(
            w[0] >= 50 && w[1] >= 50,
            "heavy vertices not separated: {w:?}"
        );
    }
}
