//! Property tests of the distributed repartitioner internals: parallel
//! heavy-edge matching validity, per-level weight conservation, and the
//! exact-cover/ceiling contract of the final partition — each on random
//! distributed graphs with random ownership.

#![cfg(test)]

use proptest::prelude::*;

use plum_parsim::{spmd, MachineModel};

use crate::distributed::{build_level0, contract_distributed, parallel_hem, DistGraph};
use crate::graph::Graph;
use crate::kway::{capacity_fractions, part_ceilings, partition_kway, PartitionConfig};
use crate::metrics::part_weights;
use crate::repartition_distributed;

/// Random connected symmetric graph: a ring plus `extra` chords, with
/// deterministic non-uniform vertex and edge weights derived from the ids
/// (symmetric by construction).
fn random_graph(n: usize, extra: &[(u32, u32)]) -> Graph<'static> {
    use std::collections::BTreeSet;
    let mut adj: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    for v in 0..n {
        let u = (v + 1) % n;
        adj[v].insert(u as u32);
        adj[u].insert(v as u32);
    }
    for &(a, b) in extra {
        let a = a as usize % n;
        let b = b as usize % n;
        if a != b {
            adj[a].insert(b as u32);
            adj[b].insert(a as u32);
        }
    }
    let ew = |a: u32, b: u32| -> u32 { (a.min(b) * 31 + a.max(b) * 17) % 5 + 1 };
    let mut xadj = vec![0u32];
    let mut adjncy = Vec::new();
    let mut adjwgt = Vec::new();
    for (v, row) in adj.iter().enumerate() {
        for &u in row {
            adjncy.push(u);
            adjwgt.push(ew(v as u32, u));
        }
        xadj.push(adjncy.len() as u32);
    }
    let vwgt: Vec<u64> = (0..n).map(|v| (v as u64 * 7) % 3 + 1).collect();
    let g = Graph {
        xadj: xadj.into(),
        adjncy: adjncy.into(),
        adjwgt: adjwgt.into(),
        vwgt: vwgt.into(),
    };
    g.check().expect("generated graph must be well-formed");
    g
}

/// Rank-major renumbering, mirroring `build_level0`: original id → level-0
/// global id.
fn renumber(owner: &[u32], nranks: usize) -> Vec<u32> {
    let n = owner.len();
    let mut off = vec![0u32; nranks + 1];
    for &o in owner {
        off[o as usize + 1] += 1;
    }
    for r in 0..nranks {
        off[r + 1] += off[r];
    }
    let mut next = off;
    let mut newid = vec![0u32; n];
    for v in 0..n {
        let r = owner[v] as usize;
        newid[v] = next[r];
        next[r] += 1;
    }
    newid
}

/// Global edge weight between owned local vertex `i` and global id `m`.
fn row_weight_to(dg: &DistGraph, i: usize, m: u32) -> u64 {
    dg.row(i)
        .filter(|&(u, _)| u == m)
        .map(|(_, w)| w as u64)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Parallel HEM yields a valid matching: the global mate relation is
    /// involutive (so no vertex is matched twice and both sides of every
    /// cross-rank pair agreed), and every matched pair is an actual edge.
    #[test]
    fn parallel_hem_yields_a_valid_matching(
        n in 24usize..96,
        extra in proptest::collection::vec((0u32..1024, 0u32..1024), 32),
        owners in proptest::collection::vec(0u32..8, 96),
        p in 2usize..5,
        level in 0usize..3,
    ) {
        let g = random_graph(n, &extra);
        let owner: Vec<u32> = (0..n).map(|v| owners[v % owners.len()] % p as u32).collect();
        let gref = &g;
        let ownref = &owner;
        let results = spmd(p, MachineModel::zero(), move |comm| {
            let dg = build_level0(comm.rank(), p, gref, ownref, None);
            let partner = parallel_hem(comm, &dg, 0x9e37, level);
            (dg.off.clone(), partner)
        });
        let off = results[0].value.0.clone();
        let mut mate = vec![u32::MAX; n];
        for r in &results {
            let base = off[r.rank] as usize;
            for (i, &m) in r.value.1.iter().enumerate() {
                mate[base + i] = m;
            }
        }
        let newid = renumber(&owner, p);
        let mut neighbors = vec![Vec::new(); n];
        for v in 0..n {
            for (u, _) in g.edges(v) {
                neighbors[newid[v] as usize].push(newid[u as usize]);
            }
        }
        for v in 0..n {
            let m = mate[v];
            prop_assert!((m as usize) < n, "partner {} out of range at {}", m, v);
            prop_assert_eq!(
                mate[m as usize], v as u32,
                "mate relation not involutive at {} (cross-rank disagreement)", v
            );
            prop_assert!(
                m == v as u32 || neighbors[v].contains(&m),
                "vertex {} matched to non-neighbour {}", v, m
            );
        }
    }

    /// (b) Every coarsening level conserves the total vertex weight, and the
    /// coarse edge-weight total equals the fine total minus the matched
    /// internal edges (each pair's edge appears twice in the symmetric CSR).
    #[test]
    fn coarsening_levels_conserve_vertex_and_edge_weight(
        n in 24usize..96,
        extra in proptest::collection::vec((0u32..1024, 0u32..1024), 32),
        owners in proptest::collection::vec(0u32..8, 96),
        p in 2usize..5,
    ) {
        let g = random_graph(n, &extra);
        let owner: Vec<u32> = (0..n).map(|v| owners[v % owners.len()] % p as u32).collect();
        let gref = &g;
        let ownref = &owner;
        let results = spmd(p, MachineModel::zero(), move |comm| {
            let mut cur = build_level0(comm.rank(), p, gref, ownref, None);
            // (vertex total, edge total, matched internal edge weight ×2)
            let mut ledger: Vec<(u64, u64, u64)> = Vec::new();
            let vtot = |c: &mut plum_parsim::Comm, dg: &DistGraph| {
                let v: u64 = dg.vwgt.iter().sum();
                let e: u64 = dg.adjwgt.iter().map(|&w| w as u64).sum();
                (c.allreduce_sum_u64(v), c.allreduce_sum_u64(e))
            };
            let (v0, e0) = vtot(comm, &cur);
            ledger.push((v0, e0, 0));
            for level in 0..4 {
                if cur.global_n() <= 8 {
                    break;
                }
                let partner = parallel_hem(comm, &cur, 0x9e37, level);
                let base = cur.off[comm.rank()];
                let mut internal2 = 0u64;
                for (i, &m) in partner.iter().enumerate() {
                    if m != base + i as u32 {
                        internal2 += row_weight_to(&cur, i, m);
                    }
                }
                let internal2 = comm.allreduce_sum_u64(internal2);
                match contract_distributed(comm, &cur, &partner) {
                    Some((coarse, _)) => {
                        cur = coarse;
                        let (v, e) = vtot(comm, &cur);
                        ledger.push((v, e, internal2));
                    }
                    None => break,
                }
            }
            ledger
        });
        let ledger = &results[0].value;
        for r in &results {
            prop_assert_eq!(&r.value, ledger, "rank {} ledger diverged", r.rank);
        }
        prop_assert!(ledger.len() > 1, "no contraction happened");
        for lv in 1..ledger.len() {
            let (v_prev, e_prev, _) = ledger[lv - 1];
            let (v, e, internal2) = ledger[lv];
            prop_assert_eq!(v, v_prev, "vertex weight lost at level {}", lv);
            prop_assert_eq!(
                e, e_prev - internal2,
                "edge weight at level {}: {} fine − {} matched ≠ {} coarse",
                lv, e_prev, internal2, e
            );
        }
    }

    /// (c) The final partition assigns every vertex exactly once, and each
    /// part stays within its capacity ceiling up to one vertex of
    /// granularity slack (the same slack the serial kernel's own tests
    /// allow).
    #[test]
    fn final_partition_is_an_exact_cover_with_bounded_parts(
        n in 60usize..140,
        extra in proptest::collection::vec((0u32..1024, 0u32..1024), 48),
        owners in proptest::collection::vec(0u32..8, 96),
        p in 2usize..5,
        caps in proptest::collection::vec(0.5f64..2.0, 4),
        use_prev in any::<bool>(),
    ) {
        let g = random_graph(n, &extra);
        let owner: Vec<u32> = (0..n).map(|v| owners[v % owners.len()] % p as u32).collect();
        let mut cfg = PartitionConfig::new(p);
        cfg.coarsen_to = 24; // force the multilevel path on these small graphs
        let prev = partition_kway(&g, &cfg);
        let d = repartition_distributed(
            &g,
            &owner,
            if use_prev { Some(&prev) } else { None },
            &cfg,
            &caps[..p],
            p,
            MachineModel::zero(),
            0.0,
        );
        prop_assert_eq!(d.part.len(), n, "partition must cover every vertex");
        prop_assert!(d.part.iter().all(|&q| (q as usize) < p), "part id out of range");
        let w = part_weights(&g, &d.part, p);
        let frac = capacity_fractions(&caps[..p], p);
        let ceil = part_ceilings(g.total_vwgt(), &cfg, frac.as_deref());
        let maxv = *g.vwgt.iter().max().unwrap();
        for q in 0..p {
            prop_assert!(
                w[q] <= ceil[q] + maxv,
                "part {} weighs {} > ceiling {} + granularity {}",
                q, w[q], ceil[q], maxv
            );
        }
    }

    /// (d) The SFC split is an exact cover and every part's weight stays
    /// under its capacity-proportional share plus one vertex of granularity
    /// — the cursor advances before assigning, so no part can overshoot by
    /// more than the vertex that crossed its target.
    #[test]
    fn sfc_split_respects_capacity_shares(
        keyseed in proptest::collection::vec(any::<u64>(), 160),
        wseed in proptest::collection::vec(1u64..9, 160),
        n in 30usize..160,
        p in 2usize..9,
        caps in proptest::collection::vec(0.5f64..2.0, 8),
    ) {
        let keys = &keyseed[..n];
        let vwgt = &wseed[..n];
        let part = crate::sfc::sfc_split(keys, vwgt, p, &caps[..p]);
        prop_assert_eq!(part.len(), n, "split must cover every vertex");
        prop_assert!(part.iter().all(|&q| (q as usize) < p), "part id out of range");
        let mut w = vec![0u64; p];
        for v in 0..n {
            w[part[v] as usize] += vwgt[v];
        }
        let total: u64 = vwgt.iter().sum();
        let csum: f64 = caps[..p].iter().sum();
        let maxv = *vwgt.iter().max().unwrap();
        for q in 0..p {
            let share = total as f64 * caps[q] / csum;
            prop_assert!(
                w[q] as f64 <= share + maxv as f64 + 1e-6,
                "part {} weighs {} > share {} + granularity {}",
                q, w[q], share, maxv
            );
        }
    }

    /// (e) Boundary diffusion is monotone: from an *arbitrary* previous
    /// labelling it never increases the effective (capacity-weighted)
    /// imbalance, never invents part ids, and touches nothing when the
    /// input is already a single part.
    #[test]
    fn sfc_diffusion_never_increases_effective_imbalance(
        keyseed in proptest::collection::vec(any::<u64>(), 160),
        wseed in proptest::collection::vec(1u64..9, 160),
        prevseed in proptest::collection::vec(0u32..8, 160),
        n in 30usize..160,
        p in 2usize..9,
        caps in proptest::collection::vec(0.5f64..2.0, 8),
    ) {
        let keys = &keyseed[..n];
        let vwgt = &wseed[..n];
        let prev: Vec<u32> = (0..n).map(|v| prevseed[v] % p as u32).collect();
        let out = crate::sfc::sfc_diffuse(keys, vwgt, &prev, p, &caps[..p]);
        prop_assert_eq!(out.len(), n);
        prop_assert!(out.iter().all(|&q| (q as usize) < p));
        let before = crate::sfc::sfc_effective_imbalance(vwgt, &prev, p, &caps[..p]);
        let after = crate::sfc::sfc_effective_imbalance(vwgt, &out, p, &caps[..p]);
        prop_assert!(
            after <= before + 1e-9,
            "diffusion worsened imbalance: {} -> {}",
            before, after
        );
    }

    /// (g) Dual-constraint LPT packing: exact cover, and *both*
    /// per-constraint capacity-weighted imbalances stay under the dual
    /// greedy bound `2 + s_max·Σc/min(c)`, where `s_max` is the largest
    /// combined totals-normalized vertex size. (Each placement minimizes
    /// the post-assignment max-of-constraints effective load, so at the
    /// end every bin was within one vertex of the minimum when it last
    /// grew; summing over bins gives the ceiling for each constraint.)
    #[test]
    fn dual_knapsack_respects_the_dual_greedy_bound(
        w1seed in proptest::collection::vec(1u64..50, 160),
        w2seed in proptest::collection::vec(1u64..50, 160),
        n in 30usize..160,
        p in 2usize..9,
        caps in proptest::collection::vec(0.5f64..2.0, 8),
    ) {
        use crate::metrics::{imbalance_weighted, weights_of};
        let w1 = &w1seed[..n];
        let w2 = &w2seed[..n];
        let part = crate::knapsack::knapsack_partition_dual(w1, w2, p, &caps[..p]);
        prop_assert_eq!(part.len(), n);
        prop_assert!(part.iter().all(|&q| (q as usize) < p));
        let t1: u64 = w1.iter().sum();
        let t2: u64 = w2.iter().sum();
        let s_max = (0..n)
            .map(|v| w1[v] as f64 / t1 as f64 + w2[v] as f64 / t2 as f64)
            .fold(0.0, f64::max);
        let csum: f64 = caps[..p].iter().sum();
        let cmin = caps[..p].iter().cloned().fold(f64::INFINITY, f64::min);
        let bound = 2.0 + s_max * csum / cmin + 1e-6;
        let i1 = imbalance_weighted(&weights_of(w1, &part, p), &caps[..p]);
        let i2 = imbalance_weighted(&weights_of(w2, &part, p), &caps[..p]);
        prop_assert!(i1 <= bound, "constraint 1 imbalance {} beyond dual bound {}", i1, bound);
        prop_assert!(i2 <= bound, "constraint 2 imbalance {} beyond dual bound {}", i2, bound);
    }

    /// (h) The dual multilevel and repartitioning entry points inherit the
    /// dual greedy ceiling unconditionally: every exit branch of
    /// `dual_repair` returns either a pair within `tol·1.10` or the better
    /// of the graph result and the dual LPT packing, so both constraints
    /// stay under `max(tol·1.10, 2 + s_max·Σc/min(c))` for random weight
    /// pairs, random capacities, and an arbitrary previous labelling.
    #[test]
    fn dual_partitioners_respect_the_dual_ceiling(
        n in 40usize..120,
        extra in proptest::collection::vec((0u32..1024, 0u32..1024), 32),
        w2seed in proptest::collection::vec(1u64..50, 120),
        prevseed in proptest::collection::vec(0u32..8, 120),
        p in 2usize..6,
        caps in proptest::collection::vec(0.5f64..2.0, 8),
        reseed in any::<bool>(),
    ) {
        use crate::metrics::{imbalance_weighted, weights_of};
        let g = random_graph(n, &extra);
        let w2 = &w2seed[..n];
        let mut cfg = PartitionConfig::new(p);
        cfg.coarsen_to = 24;
        let part = if reseed {
            let prev: Vec<u32> = (0..n).map(|v| prevseed[v] % p as u32).collect();
            crate::repart::repartition_kway_dual(&g, w2, &cfg, &prev, &caps[..p])
        } else {
            crate::kway::partition_kway_dual(&g, w2, &cfg, &caps[..p])
        };
        prop_assert_eq!(part.len(), n);
        prop_assert!(part.iter().all(|&q| (q as usize) < p));
        let t1 = g.total_vwgt();
        let t2: u64 = w2.iter().sum();
        let s_max = (0..n)
            .map(|v| g.vwgt[v] as f64 / t1 as f64 + w2[v] as f64 / t2 as f64)
            .fold(0.0, f64::max);
        let csum: f64 = caps[..p].iter().sum();
        let cmin = caps[..p].iter().cloned().fold(f64::INFINITY, f64::min);
        let bound = (cfg.imbalance_tol * 1.10).max(2.0 + s_max * csum / cmin) + 1e-6;
        let i1 = imbalance_weighted(&part_weights(&g, &part, p), &caps[..p]);
        let i2 = imbalance_weighted(&weights_of(w2, &part, p), &caps[..p]);
        prop_assert!(i1 <= bound, "constraint 1 imbalance {} beyond ceiling {}", i1, bound);
        prop_assert!(i2 <= bound, "constraint 2 imbalance {} beyond ceiling {}", i2, bound);
    }

    /// (i) Every dual kernel reduces *bit-exactly* to its single-constraint
    /// counterpart when the second weight vector is uniform — the session
    /// engine can therefore route everything through the dual entry points
    /// without perturbing single-constraint goldens.
    #[test]
    fn dual_kernels_reduce_bit_exactly_when_uniform(
        n in 30usize..100,
        extra in proptest::collection::vec((0u32..1024, 0u32..1024), 24),
        keyseed in proptest::collection::vec(any::<u64>(), 100),
        prevseed in proptest::collection::vec(0u32..8, 100),
        c in 1u64..9,
        p in 2usize..6,
        caps in proptest::collection::vec(0.5f64..2.0, 8),
    ) {
        let g = random_graph(n, &extra);
        let w2 = vec![c; n];
        let keys = &keyseed[..n];
        let prev: Vec<u32> = (0..n).map(|v| prevseed[v] % p as u32).collect();
        let mut cfg = PartitionConfig::new(p);
        cfg.coarsen_to = 24;
        prop_assert_eq!(
            crate::knapsack::knapsack_partition_dual(&g.vwgt, &w2, p, &caps[..p]),
            crate::knapsack::knapsack_partition(&g.vwgt, p, &caps[..p])
        );
        prop_assert_eq!(
            crate::sfc::sfc_split_dual(keys, &g.vwgt, &w2, p, &caps[..p]),
            crate::sfc::sfc_split(keys, &g.vwgt, p, &caps[..p])
        );
        prop_assert_eq!(
            crate::sfc::sfc_diffuse_dual(keys, &g.vwgt, &w2, &prev, p, &caps[..p]),
            crate::sfc::sfc_diffuse(keys, &g.vwgt, &prev, p, &caps[..p])
        );
        prop_assert_eq!(
            crate::sfc::sfc_partition_dual(keys, &g.vwgt, &w2, p, &caps[..p]),
            crate::sfc::sfc_partition(keys, &g.vwgt, p, &caps[..p])
        );
        prop_assert_eq!(
            crate::kway::partition_kway_dual(&g, &w2, &cfg, &caps[..p]),
            crate::kway::partition_kway_weighted(&g, &cfg, &caps[..p])
        );
        prop_assert_eq!(
            crate::repart::repartition_kway_dual(&g, &w2, &cfg, &prev, &caps[..p]),
            crate::repart::repartition_kway_weighted(&g, &cfg, &prev, &caps[..p])
        );
    }

    /// (j) Dual boundary diffusion is monotone in the *binding* constraint:
    /// from an arbitrary previous labelling it never increases the
    /// max-of-imbalances objective and never invents part ids.
    #[test]
    fn dual_sfc_diffusion_never_increases_the_binding_imbalance(
        keyseed in proptest::collection::vec(any::<u64>(), 160),
        w1seed in proptest::collection::vec(1u64..9, 160),
        w2seed in proptest::collection::vec(1u64..9, 160),
        prevseed in proptest::collection::vec(0u32..8, 160),
        n in 30usize..160,
        p in 2usize..9,
        caps in proptest::collection::vec(0.5f64..2.0, 8),
    ) {
        let keys = &keyseed[..n];
        let w1 = &w1seed[..n];
        let w2 = &w2seed[..n];
        let prev: Vec<u32> = (0..n).map(|v| prevseed[v] % p as u32).collect();
        let out = crate::sfc::sfc_diffuse_dual(keys, w1, w2, &prev, p, &caps[..p]);
        prop_assert_eq!(out.len(), n);
        prop_assert!(out.iter().all(|&q| (q as usize) < p));
        let before = crate::sfc::sfc_effective_imbalance_dual(w1, w2, &prev, p, &caps[..p]);
        let after = crate::sfc::sfc_effective_imbalance_dual(w1, w2, &out, p, &caps[..p]);
        prop_assert!(
            after <= before + 1e-9,
            "dual diffusion worsened the binding imbalance: {} -> {}",
            before, after
        );
    }

    /// (k) Second-order diffusion flow solve: every executed round is
    /// flow-conserving (the signed per-part deltas sum to zero), and the
    /// cumulative flows reproduce the final deviation exactly — the flows
    /// *are* the transcript of the solve, not an approximation of it.
    #[test]
    fn diffusion_flow_solve_conserves_per_round_and_in_total(
        n in 4usize..16,
        extra in proptest::collection::vec((0u32..1024, 0u32..1024), 8),
        loadseed in proptest::collection::vec(1u64..100, 16),
        second_order in any::<bool>(),
    ) {
        use crate::diffusion2::solve_flows;
        let g = random_graph(n, &extra);
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|v| g.edges(v).map(|(u, _)| u as usize).collect())
            .collect();
        let total: u64 = loadseed[..n].iter().sum();
        let mean = total as f64 / n as f64;
        let dev: Vec<f64> = loadseed[..n].iter().map(|&w| w as f64 - mean).collect();
        let scale = dev.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        let solve = solve_flows(&adj, &dev, second_order, 400, 0.01 * mean);
        for (round, rf) in solve.round_flows.iter().enumerate() {
            let mut delta = vec![0.0f64; n];
            for (e, &(p, q)) in solve.edges.iter().enumerate() {
                delta[p as usize] -= rf[e];
                delta[q as usize] += rf[e];
            }
            let net: f64 = delta.iter().sum();
            prop_assert!(
                net.abs() <= 1e-9 * scale.max(1.0),
                "round {} leaks weight: net {}", round, net
            );
        }
        let mut fin = dev.clone();
        for (e, &(p, q)) in solve.edges.iter().enumerate() {
            fin[p as usize] -= solve.flows[e];
            fin[q as usize] += solve.flows[e];
        }
        let per_round_sum: Vec<f64> = solve.edges.iter().enumerate().map(|(e, _)| {
            solve.round_flows.iter().map(|rf| rf[e]).sum()
        }).collect();
        for (e, &f) in solve.flows.iter().enumerate() {
            prop_assert!(
                (f - per_round_sum[e]).abs() <= 1e-9 * scale.max(1.0),
                "cumulative flow {} diverges from its round transcript {}",
                f, per_round_sum[e]
            );
        }
        if solve.rounds < 400 && !solve.edges.is_empty() {
            let worst = fin.iter().fold(0.0f64, |m, v| m.max(v.abs()));
            prop_assert!(
                worst <= 0.01 * mean + 1e-9,
                "converged solve left deviation {}", worst
            );
        }
    }

    /// (k') The element-level kernel conserves the total weight exactly in
    /// u64 (every vertex keeps exactly one part), never invents part ids,
    /// and never worsens the capacity-weighted imbalance.
    #[test]
    fn diffusion2_balance_conserves_u64_weight_and_is_monotone(
        n in 24usize..96,
        extra in proptest::collection::vec((0u32..1024, 0u32..1024), 32),
        prevseed in proptest::collection::vec(0u32..8, 96),
        p in 2usize..6,
        caps in proptest::collection::vec(0.5f64..2.0, 8),
    ) {
        use crate::diffusion2::diffusion2_balance;
        use crate::metrics::{imbalance_weighted, weights_of};
        let g = random_graph(n, &extra);
        let prev: Vec<u32> = (0..n).map(|v| prevseed[v % prevseed.len()] % p as u32).collect();
        let part = diffusion2_balance(&g, &prev, p, &caps[..p]);
        prop_assert_eq!(part.len(), n);
        prop_assert!(part.iter().all(|&q| (q as usize) < p));
        let before_w = weights_of(&g.vwgt, &prev, p);
        let after_w = weights_of(&g.vwgt, &part, p);
        prop_assert_eq!(
            before_w.iter().sum::<u64>(), after_w.iter().sum::<u64>(),
            "diffusion must conserve the total weight exactly"
        );
        let before = imbalance_weighted(&before_w, &caps[..p]);
        let after = imbalance_weighted(&after_w, &caps[..p]);
        prop_assert!(
            after <= before + 1e-9,
            "diffusion2 worsened imbalance: {} -> {}", before, after
        );
    }

    /// (l) Chebyshev acceleration: on random rank graphs the second-order
    /// solve needs no more rounds than first order (up to a small constant
    /// start-up slack on trivially-converging instances) and still
    /// converges whenever first order does.
    #[test]
    fn chebyshev_needs_no_more_rounds_than_first_order(
        n in 4usize..16,
        extra in proptest::collection::vec((0u32..1024, 0u32..1024), 8),
        loadseed in proptest::collection::vec(1u64..100, 16),
    ) {
        use crate::diffusion2::solve_flows;
        let g = random_graph(n, &extra);
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|v| g.edges(v).map(|(u, _)| u as usize).collect())
            .collect();
        let total: u64 = loadseed[..n].iter().sum();
        let mean = total as f64 / n as f64;
        let dev: Vec<f64> = loadseed[..n].iter().map(|&w| w as f64 - mean).collect();
        let tol = 0.02 * mean;
        let fo = solve_flows(&adj, &dev, false, 400, tol);
        let so = solve_flows(&adj, &dev, true, 400, tol);
        if fo.rounds < 400 {
            prop_assert!(so.rounds < 400, "first order converged but SOS did not");
        }
        // The SOS recurrence only kicks in at round 2, so allow a small
        // constant slack on instances first order finishes immediately.
        let bound = if fo.rounds >= 10 { fo.rounds } else { fo.rounds + 4 };
        prop_assert!(
            so.rounds <= bound,
            "second order took {} rounds, first order {}", so.rounds, fo.rounds
        );
    }

    /// (m) Voronoi balancing terminates in its fixed round budget for any
    /// input, is an exact cover, and never worsens the capacity-weighted
    /// imbalance relative to the seed partition.
    #[test]
    fn voronoi_is_total_and_monotone_under_random_capacities(
        keyseed in proptest::collection::vec(any::<u64>(), 160),
        wseed in proptest::collection::vec(1u64..9, 160),
        prevseed in proptest::collection::vec(0u32..8, 160),
        n in 30usize..160,
        p in 2usize..9,
        caps in proptest::collection::vec(0.5f64..2.0, 8),
    ) {
        use crate::metrics::{imbalance_weighted, weights_of};
        use crate::voronoi::{voronoi_balance, voronoi_partition};
        let keys = &keyseed[..n];
        let vwgt = &wseed[..n];
        let prev: Vec<u32> = (0..n).map(|v| prevseed[v] % p as u32).collect();
        let out = voronoi_balance(keys, vwgt, &prev, p, &caps[..p]);
        prop_assert_eq!(out.len(), n);
        prop_assert!(out.iter().all(|&q| (q as usize) < p));
        let before = imbalance_weighted(&weights_of(vwgt, &prev, p), &caps[..p]);
        let after = imbalance_weighted(&weights_of(vwgt, &out, p), &caps[..p]);
        prop_assert!(
            after <= before + 1e-9,
            "voronoi worsened imbalance: {} -> {}", before, after
        );
        let fresh = voronoi_partition(keys, vwgt, p, &caps[..p]);
        prop_assert_eq!(fresh.len(), n);
        prop_assert!(fresh.iter().all(|&q| (q as usize) < p));
    }

    /// (n) The new balancers' dual kernels reduce bit-exactly to their
    /// single-constraint counterparts when the second weight vector is
    /// uniform — same contract as test (i) for the PR 6 portfolio.
    #[test]
    fn new_balancer_duals_reduce_bit_exactly_when_uniform(
        n in 24usize..80,
        extra in proptest::collection::vec((0u32..1024, 0u32..1024), 24),
        keyseed in proptest::collection::vec(any::<u64>(), 80),
        prevseed in proptest::collection::vec(0u32..8, 80),
        c in 1u64..9,
        p in 2usize..6,
        caps in proptest::collection::vec(0.5f64..2.0, 8),
    ) {
        use crate::diffusion2::{diffusion2_balance, diffusion2_balance_dual};
        use crate::voronoi::{
            voronoi_balance, voronoi_balance_dual, voronoi_partition, voronoi_partition_dual,
        };
        let g = random_graph(n, &extra);
        let w2 = vec![c; n];
        let keys = &keyseed[..n];
        let prev: Vec<u32> = (0..n).map(|v| prevseed[v] % p as u32).collect();
        prop_assert_eq!(
            diffusion2_balance_dual(&g, &w2, &prev, p, &caps[..p]),
            diffusion2_balance(&g, &prev, p, &caps[..p])
        );
        prop_assert_eq!(
            voronoi_balance_dual(keys, &g.vwgt, &w2, &prev, p, &caps[..p]),
            voronoi_balance(keys, &g.vwgt, &prev, p, &caps[..p])
        );
        prop_assert_eq!(
            voronoi_partition_dual(keys, &g.vwgt, &w2, p, &caps[..p]),
            voronoi_partition(keys, &g.vwgt, p, &caps[..p])
        );
    }

    /// (f) LPT knapsack packing: exact cover, and the heaviest effective
    /// (capacity-scaled) bin load stays under the ideal `Σw/Σc` plus the
    /// greedy bound's one-job slack `max(w)/min(c)`.
    #[test]
    fn knapsack_respects_the_greedy_bound(
        wseed in proptest::collection::vec(1u64..50, 160),
        n in 30usize..160,
        p in 2usize..9,
        caps in proptest::collection::vec(0.5f64..2.0, 8),
    ) {
        let vwgt = &wseed[..n];
        let part = crate::knapsack::knapsack_partition(vwgt, p, &caps[..p]);
        prop_assert_eq!(part.len(), n);
        prop_assert!(part.iter().all(|&q| (q as usize) < p));
        let mut w = vec![0u64; p];
        for v in 0..n {
            w[part[v] as usize] += vwgt[v];
        }
        let total: u64 = vwgt.iter().sum();
        let csum: f64 = caps[..p].iter().sum();
        let cmin = caps[..p].iter().cloned().fold(f64::INFINITY, f64::min);
        let maxv = *vwgt.iter().max().unwrap();
        let worst = (0..p).map(|q| w[q] as f64 / caps[q]).fold(0.0, f64::max);
        prop_assert!(
            worst <= total as f64 / csum + maxv as f64 / cmin + 1e-6,
            "effective max load {} beyond the LPT bound ({} ideal + {} slack)",
            worst, total as f64 / csum, maxv as f64 / cmin
        );
    }
}
