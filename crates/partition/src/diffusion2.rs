//! Second-order (Chebyshev-accelerated) diffusion over the rank-adjacency
//! graph: the classical local balancer the paper positions PLUM against,
//! upgraded from the serial first-order approximation in
//! [`crate::diffusion`] to the second-order scheme (SOS) of the diffusive
//! load-balancing literature, and given a bit-identical SPMD body so it
//! competes inside the simulator on equal footing.
//!
//! The scheme has two stages. The *flow solve* works on the replicated
//! per-part load vector: with `L` the Laplacian of the rank-adjacency
//! graph and `M = I − αL` (α = 1/(1+max_deg)), first-order diffusion
//! iterates `x ← Mx`; the second-order scheme accelerates it with the
//! Chebyshev-style recurrence `x^{k+1} = βMx^k + (1−β)x^{k−1}`, where
//! `β = 2/(1+√(1−γ²))` and γ is the dominant eigenvalue of `M` on the
//! deviation subspace (estimated by a deterministic power iteration). The
//! solve runs on *deviations from the capacity-weighted target*
//! `x_p = w_p − total·f_p`, so heterogeneous capacities steer the flows
//! exactly as effective weights `w_p/c_p` would, while the quantity being
//! diffused stays in raw (conserved) weight units. Accumulating the
//! per-edge transfers yields a flow plan: how much weight each rank pair
//! should exchange.
//!
//! The *element selection* stage realizes the plan with local moves:
//! deterministic sweeps over the vertices move boundary elements along
//! edges with outstanding quota until the plan is (approximately)
//! realized. A final monotone guard keeps the previous partition whenever
//! the realized moves fail to improve the effective imbalance, which makes
//! an already-balanced partition an exact fixed point.
//!
//! The SPMD body follows the [`crate::sfc`] contract: all control flow
//! branches on replicated data, so the partition is a deterministic
//! function of `(graph, prev, nparts, caps)` and independent of the
//! machine model; virtual time comes from per-vertex compute charges and
//! real traffic (the load-vector allreduce plus the moved-triple
//! exchange).

use plum_parsim::{makespan, spmd, Comm, MachineModel, TraceLog};

use crate::distributed::DistPartition;
use crate::graph::Graph;
use crate::metrics::{combine_dual, dual_uniform, imbalance_dual, imbalance_weighted, weights_of};
use crate::sfc::{
    cap_fractions, charge, exchange_and_check, resolve_replicated, DUAL_TRIPLE_BYTES, TRIPLE_BYTES,
};

/// Cap on flow-solve rounds. The Chebyshev recurrence converges in
/// O(diam·√cond) rounds on the graphs we see; 64 is comfortably past that
/// for P ≤ 4096 rank graphs while bounding the replicated arithmetic.
pub const DIFFUSION2_MAX_ROUNDS: usize = 64;

/// Element-selection sweeps realizing the flow plan. Each sweep walks the
/// vertices once; quotas shrink monotonically, so a handful suffices.
const SELECT_SWEEPS: usize = 8;

/// Stop the flow solve once every part is within this fraction of the
/// average part load from its capacity target.
const FLOW_TOL: f64 = 0.01;

/// Power-iteration steps for the γ estimate. The estimate only tunes the
/// acceleration parameter β, so a rough figure is fine.
const GAMMA_ITERS: usize = 32;

/// Result of the diffusion flow solve on the rank-adjacency graph.
pub struct FlowSolve {
    /// Rounds actually executed (0 when the input is already in tolerance).
    pub rounds: usize,
    /// Rank-graph edges `(p, q)` with `p < q`, sorted.
    pub edges: Vec<(u32, u32)>,
    /// Cumulative signed flow per edge; positive means `p → q`.
    pub flows: Vec<f64>,
    /// Per-round signed flow per edge, for conservation checks.
    pub round_flows: Vec<Vec<f64>>,
}

/// Rank-adjacency graph: parts `p` and `q` are adjacent when some mesh
/// edge crosses the `p|q` boundary. Deterministic (BTreeSet dedup), and
/// self-loops are dropped.
pub fn rank_adjacency(g: &Graph<'_>, part: &[u32], nparts: usize) -> Vec<Vec<usize>> {
    use std::collections::BTreeSet;
    assert_eq!(g.n(), part.len(), "one part per vertex");
    let mut nbr: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nparts];
    for v in 0..g.n() {
        let p = part[v] as usize;
        for (u, _) in g.edges(v) {
            let q = part[u as usize] as usize;
            if p != q {
                nbr[p].insert(q);
                nbr[q].insert(p);
            }
        }
    }
    nbr.into_iter().map(|s| s.into_iter().collect()).collect()
}

/// Dominant eigenvalue of `M = I − αL` on the deviation subspace,
/// estimated by a deterministic power iteration with mean deflation. Only
/// tunes the Chebyshev β, so the rough 32-step figure is plenty.
fn estimate_gamma(adj: &[Vec<usize>], alpha: f64) -> f64 {
    let n = adj.len();
    if n < 2 {
        return 0.0;
    }
    // Weyl-sequence start vector: deterministic, no special symmetry.
    let mut v: Vec<f64> = (0..n)
        .map(|i| ((i as f64 * 0.618_033_988_75).fract()) - 0.5)
        .collect();
    let mut gamma = 0.0;
    for _ in 0..GAMMA_ITERS {
        // Deflate the all-ones eigenvector (eigenvalue 1) so the power
        // iteration converges to the dominant *deviation* mode.
        let mean = v.iter().sum::<f64>() / n as f64;
        for x in v.iter_mut() {
            *x -= mean;
        }
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-300 {
            return 0.0;
        }
        for x in v.iter_mut() {
            *x /= norm;
        }
        // w = Mv = v − αLv
        let mut w = v.clone();
        for (p, nbrs) in adj.iter().enumerate() {
            for &q in nbrs {
                w[p] += alpha * (v[q] - v[p]);
            }
        }
        gamma = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        v = w;
    }
    gamma.clamp(0.0, 0.999)
}

/// Solve for per-edge flows that drive the deviation vector `load` toward
/// zero. `load` is the signed deviation of each part from its target (its
/// entries sum to ~0); the returned flows satisfy
/// `final_p = load_p − Σ_{e∋p} ±flow_e` with `final` within `tol` of zero
/// (or `max_rounds` reached). `second_order` enables the Chebyshev
/// recurrence; otherwise the plain first-order scheme runs — kept callable
/// so the property tests can compare convergence.
pub fn solve_flows(
    adj: &[Vec<usize>],
    load: &[f64],
    second_order: bool,
    max_rounds: usize,
    tol: f64,
) -> FlowSolve {
    let n = adj.len();
    assert_eq!(n, load.len(), "one load per part");
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (p, nbrs) in adj.iter().enumerate() {
        for &q in nbrs {
            if p < q {
                edges.push((p as u32, q as u32));
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    let mut out = FlowSolve {
        rounds: 0,
        flows: vec![0.0; edges.len()],
        round_flows: Vec::new(),
        edges,
    };
    if out.edges.is_empty() {
        return out;
    }
    let max_deg = adj.iter().map(Vec::len).max().unwrap_or(0);
    let alpha = 1.0 / (1.0 + max_deg as f64);
    let beta = if second_order {
        let gamma = estimate_gamma(adj, alpha);
        2.0 / (1.0 + (1.0 - gamma * gamma).sqrt())
    } else {
        1.0
    };
    let mut x = load.to_vec();
    // z[e] is the flow sent along edge e in the previous round; the SOS
    // recurrence x^{k+1} = βMx^k + (1−β)x^{k−1} rewrites per edge as
    // z^k = βα(x_p − x_q) + (β−1)z^{k−1}, which keeps the scheme
    // flow-conserving round by round.
    let mut z = vec![0.0; out.edges.len()];
    for round in 0..max_rounds {
        if x.iter().fold(0.0f64, |m, v| m.max(v.abs())) <= tol {
            break;
        }
        let mut round_flow = vec![0.0; out.edges.len()];
        for (e, &(p, q)) in out.edges.iter().enumerate() {
            let first = alpha * (x[p as usize] - x[q as usize]);
            round_flow[e] = if round == 0 || !second_order {
                first
            } else {
                beta * first + (beta - 1.0) * z[e]
            };
        }
        for (e, &(p, q)) in out.edges.iter().enumerate() {
            x[p as usize] -= round_flow[e];
            x[q as usize] += round_flow[e];
            out.flows[e] += round_flow[e];
        }
        z = round_flow.clone();
        out.round_flows.push(round_flow);
        out.rounds = round + 1;
    }
    out
}

/// Realize the flow plan with local element moves: deterministic sweeps
/// move a vertex from its part `s` to a neighboring part `q` while the
/// outstanding `s → q` quota still covers at least half the vertex weight
/// (largest remaining quota wins, ties break to the smallest part id).
fn realize_flows(g: &Graph<'_>, w: &[u64], prev: &[u32], solve: &FlowSolve) -> (Vec<u32>, usize) {
    use std::collections::BTreeMap;
    let mut quota: BTreeMap<(u32, u32), f64> = BTreeMap::new();
    for (e, &(p, q)) in solve.edges.iter().enumerate() {
        let f = solve.flows[e];
        if f > 0.0 {
            quota.insert((p, q), f);
        } else if f < 0.0 {
            quota.insert((q, p), -f);
        }
    }
    let mut part = prev.to_vec();
    let mut moved_total = 0usize;
    for _ in 0..SELECT_SWEEPS {
        let mut moved = false;
        for v in 0..g.n() {
            let s = part[v];
            let wv = w[v] as f64;
            // Best destination among the parts of v's neighbors: the
            // outstanding quota must cover at least half the vertex, so
            // realized flow overshoots the plan by at most wv/2 per edge.
            let mut best: Option<(f64, u32)> = None;
            for (u, _) in g.edges(v) {
                let q = part[u as usize];
                if q == s {
                    continue;
                }
                let Some(&left) = quota.get(&(s, q)) else {
                    continue;
                };
                if left < wv / 2.0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((bleft, bq)) => left > bleft || (left == bleft && q < bq),
                };
                if better {
                    best = Some((left, q));
                }
            }
            if let Some((_, q)) = best {
                *quota.get_mut(&(s, q)).unwrap() -= wv;
                part[v] = q;
                moved = true;
                moved_total += 1;
            }
        }
        if !moved {
            break;
        }
    }
    (part, moved_total)
}

/// Shared core of the single- and dual-constraint kernels: flow solve on
/// `w_flow` (the constraint being diffused), realization, then a monotone
/// guard under `judge` (the imbalance the caller contracts never to
/// increase).
fn diffusion2_core(
    g: &Graph<'_>,
    w_flow: &[u64],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
    judge: impl Fn(&[u32]) -> f64,
) -> Vec<u32> {
    assert_eq!(g.n(), prev.len(), "one previous part per vertex");
    assert_eq!(g.n(), w_flow.len(), "one weight per vertex");
    if nparts <= 1 || g.n() == 0 {
        return prev.to_vec();
    }
    let frac = cap_fractions(caps, nparts);
    let w_parts = weights_of(w_flow, prev, nparts);
    let total: u64 = w_parts.iter().sum();
    if total == 0 {
        return prev.to_vec();
    }
    // Deviation from the capacity-weighted target, in raw weight units:
    // exactly what element moves conserve, and zero iff perfectly placed.
    let dev: Vec<f64> = w_parts
        .iter()
        .zip(&frac)
        .map(|(&w, &f)| w as f64 - total as f64 * f)
        .collect();
    let tol = FLOW_TOL * total as f64 / nparts as f64;
    let adj = rank_adjacency(g, prev, nparts);
    let solve = solve_flows(&adj, &dev, true, DIFFUSION2_MAX_ROUNDS, tol);
    if solve.edges.is_empty() || solve.rounds == 0 {
        return prev.to_vec();
    }
    let (part, _) = realize_flows(g, w_flow, prev, &solve);
    // Monotone guard: diffusion repairs or does nothing. This also makes
    // an already-balanced partition an exact fixed point (zero deviation
    // ⇒ zero rounds above, but quantization can leave small deviations —
    // the guard catches any realization that fails to pay for itself).
    if judge(&part) > judge(prev) - 1e-12 {
        return prev.to_vec();
    }
    part
}

/// Serial kernel: rebalance `prev` by second-order diffusion of the vertex
/// weights over the rank-adjacency graph, capacity-aware via the deviation
/// target `total·c_p/Σc`. Never worsens the effective imbalance; a
/// balanced input is returned unchanged.
pub fn diffusion2_balance(g: &Graph<'_>, prev: &[u32], nparts: usize, caps: &[f64]) -> Vec<u32> {
    let judge = |part: &[u32]| imbalance_weighted(&weights_of(&g.vwgt, part, nparts), caps);
    diffusion2_core(g, &g.vwgt, prev, nparts, caps, judge)
}

/// Dual-constraint serial kernel: diffuse the combined weight
/// (max-normalized sum of both constraints) and judge the monotone guard
/// on the dual effective imbalance. A uniform second weight vector reduces
/// bit-exactly to [`diffusion2_balance`].
pub fn diffusion2_balance_dual(
    g: &Graph<'_>,
    w2: &[u64],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
) -> Vec<u32> {
    if dual_uniform(w2) {
        return diffusion2_balance(g, prev, nparts, caps);
    }
    assert_eq!(g.n(), w2.len(), "one second weight per vertex");
    let combined = combine_dual(&g.vwgt, w2);
    let judge = |part: &[u32]| {
        imbalance_dual(
            &weights_of(&g.vwgt, part, nparts),
            &weights_of(w2, part, nparts),
            caps,
        )
    };
    diffusion2_core(g, &combined, prev, nparts, caps, judge)
}

/// SPMD body of the second-order diffusion balancer. The load vector is
/// replicated by the part-weight allreduce and the flow solve is local
/// replicated arithmetic, so — unlike a real per-round implementation —
/// one allreduce plus the moved-triple exchange is the *entire* traffic;
/// the per-vertex charge covers the local boundary scan and selection
/// sweeps. Bit-identical to [`diffusion2_balance`] on every rank under
/// every machine model.
#[allow(clippy::too_many_arguments)]
pub fn diffusion2_body(
    comm: &mut Comm,
    g: &Graph<'_>,
    owner: &[u32],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
    precomputed: Option<&[u32]>,
) -> Vec<u32> {
    let rank = comm.rank();
    let part = resolve_replicated(precomputed, || diffusion2_balance(g, prev, nparts, caps));
    // Local work: boundary scan + selection sweeps over the local block.
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    charge(comm, n_local.div_ceil(2), vertex_units);
    exchange_and_check(
        comm,
        &g.vwgt,
        None,
        owner,
        &part,
        Some(prev),
        nparts,
        TRIPLE_BYTES,
    );
    part
}

/// Dual-constraint SPMD body: the same structure with the wider payload
/// and a second cross-checked weight allreduce. A uniform second weight
/// vector delegates to [`diffusion2_body`], leaving its traffic untouched.
#[allow(clippy::too_many_arguments)]
pub fn diffusion2_body_dual(
    comm: &mut Comm,
    g: &Graph<'_>,
    w2: &[u64],
    owner: &[u32],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
    precomputed: Option<&[u32]>,
) -> Vec<u32> {
    if dual_uniform(w2) {
        return diffusion2_body(
            comm,
            g,
            owner,
            prev,
            nparts,
            caps,
            vertex_units,
            precomputed,
        );
    }
    let rank = comm.rank();
    let part = resolve_replicated(precomputed, || {
        diffusion2_balance_dual(g, w2, prev, nparts, caps)
    });
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    charge(comm, n_local.div_ceil(2), vertex_units);
    exchange_and_check(
        comm,
        &g.vwgt,
        Some(w2),
        owner,
        &part,
        Some(prev),
        nparts,
        DUAL_TRIPLE_BYTES,
    );
    part
}

/// Standalone distributed harness (mirrors [`crate::sfc::sfc_distributed`]):
/// hoist the replicated arithmetic once, run the body on every rank, check
/// agreement, and return the partition with its modeled makespan and trace.
#[allow(clippy::too_many_arguments)]
pub fn diffusion2_distributed(
    g: &Graph<'_>,
    owner: &[u32],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
    nranks: usize,
    model: MachineModel,
    vertex_units: f64,
) -> DistPartition {
    let hoisted = diffusion2_balance(g, prev, nparts, caps);
    let hoisted = &hoisted;
    let results = spmd(nranks, model, move |comm| {
        comm.phase("partition", |c| {
            diffusion2_body(c, g, owner, prev, nparts, caps, vertex_units, Some(hoisted))
        })
    });
    let part = results[0].value.clone();
    for r in &results {
        assert_eq!(r.value, part, "rank {} disagrees on the partition", r.rank);
    }
    DistPartition {
        part,
        makespan: makespan(&results),
        trace: TraceLog::from_results(&results),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring of n vertices with the given weights.
    fn ring(n: usize, vwgt: Vec<u64>) -> (Vec<u32>, Vec<u32>, Vec<u64>) {
        let mut xadj = Vec::with_capacity(n + 1);
        let mut adjncy = Vec::with_capacity(2 * n);
        xadj.push(0u32);
        for v in 0..n {
            adjncy.push(((v + n - 1) % n) as u32);
            adjncy.push(((v + 1) % n) as u32);
            xadj.push(adjncy.len() as u32);
        }
        (xadj, adjncy, vwgt)
    }

    #[test]
    fn balanced_partition_is_exact_fixed_point() {
        let (xadj, adjncy, vwgt) = ring(64, vec![1; 64]);
        let g = Graph::view(&xadj, &adjncy, &vwgt);
        let prev: Vec<u32> = (0..64).map(|v| (v / 16) as u32).collect();
        let caps = vec![1.0; 4];
        assert_eq!(diffusion2_balance(&g, &prev, 4, &caps), prev);
    }

    #[test]
    fn imbalanced_ring_improves_and_conserves_weight() {
        let n = 64;
        let mut vwgt = vec![1u64; n];
        for w in vwgt.iter_mut().take(16) {
            *w = 8; // first part carries 8× weight
        }
        let (xadj, adjncy, vwgt) = ring(n, vwgt);
        let g = Graph::view(&xadj, &adjncy, &vwgt);
        let prev: Vec<u32> = (0..n).map(|v| (v / 16) as u32).collect();
        let caps = vec![1.0; 4];
        let part = diffusion2_balance(&g, &prev, 4, &caps);
        let total_before: u64 = weights_of(&vwgt, &prev, 4).iter().sum();
        let total_after: u64 = weights_of(&vwgt, &part, 4).iter().sum();
        assert_eq!(total_before, total_after, "moves must conserve weight");
        let old = imbalance_weighted(&weights_of(&vwgt, &prev, 4), &caps);
        let new = imbalance_weighted(&weights_of(&vwgt, &part, 4), &caps);
        assert!(new < old, "diffusion must repair: {new} vs {old}");
        assert!(part != prev, "the hot ring must shed load");
    }

    #[test]
    fn capacity_aware_targets_follow_fractions() {
        let n = 60;
        let (xadj, adjncy, vwgt) = ring(n, vec![1; n]);
        let g = Graph::view(&xadj, &adjncy, &vwgt);
        // Equal thirds, but part 0 has twice the capacity: its deviation
        // target is 30, so diffusion should push load *toward* part 0.
        let prev: Vec<u32> = (0..n).map(|v| (v / 20) as u32).collect();
        let caps = vec![2.0, 1.0, 1.0];
        let part = diffusion2_balance(&g, &prev, 3, &caps);
        let w = weights_of(&vwgt, &part, 3);
        let old = imbalance_weighted(&weights_of(&vwgt, &prev, 3), &caps);
        let new = imbalance_weighted(&w, &caps);
        assert!(
            new < old,
            "capacity-weighted imbalance must drop: {new} vs {old}"
        );
        assert!(w[0] > 20, "double-capacity part must gain load: {w:?}");
    }

    #[test]
    fn dual_uniform_reduces_bit_exactly() {
        let n = 48;
        let mut vwgt = vec![1u64; n];
        for w in vwgt.iter_mut().take(12) {
            *w = 5;
        }
        let (xadj, adjncy, vwgt) = ring(n, vwgt);
        let g = Graph::view(&xadj, &adjncy, &vwgt);
        let prev: Vec<u32> = (0..n).map(|v| (v / 12) as u32).collect();
        let caps = vec![1.0; 4];
        let w2 = vec![3u64; n];
        assert_eq!(
            diffusion2_balance_dual(&g, &w2, &prev, 4, &caps),
            diffusion2_balance(&g, &prev, 4, &caps)
        );
    }

    #[test]
    fn chebyshev_flow_solve_converges_on_path_graph() {
        // Path of 8 ranks, all load on rank 0.
        let adj: Vec<Vec<usize>> = (0..8)
            .map(|p: usize| {
                let mut v = Vec::new();
                if p > 0 {
                    v.push(p - 1);
                }
                if p < 7 {
                    v.push(p + 1);
                }
                v
            })
            .collect();
        let mut dev = vec![-10.0; 8];
        dev[0] = 70.0;
        let so = solve_flows(&adj, &dev, true, 400, 0.5);
        let fo = solve_flows(&adj, &dev, false, 400, 0.5);
        assert!(so.rounds > 0 && so.rounds < 400, "SOS must converge");
        assert!(
            so.rounds <= fo.rounds,
            "second order ({}) must not be slower than first order ({})",
            so.rounds,
            fo.rounds
        );
        // Final deviations follow from the flows exactly.
        let mut fin = dev.clone();
        for (e, &(p, q)) in so.edges.iter().enumerate() {
            fin[p as usize] -= so.flows[e];
            fin[q as usize] += so.flows[e];
        }
        assert!(fin.iter().all(|x| x.abs() <= 0.5), "unconverged: {fin:?}");
    }
}
