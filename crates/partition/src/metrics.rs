//! Partition quality metrics.

use crate::graph::Graph;

/// Total weight of edges crossing partition boundaries (each undirected edge
/// counted once).
pub fn edge_cut(g: &Graph, part: &[u32]) -> u64 {
    let mut cut = 0u64;
    for v in 0..g.n() {
        for (u, w) in g.edges(v) {
            if part[v] != part[u as usize] {
                cut += w as u64;
            }
        }
    }
    cut / 2
}

/// Vertex-weight totals per part.
pub fn part_weights(g: &Graph, part: &[u32], nparts: usize) -> Vec<u64> {
    let mut w = vec![0u64; nparts];
    for v in 0..g.n() {
        w[part[v] as usize] += g.vwgt[v];
    }
    w
}

/// Load imbalance: `max(weights) / mean(weights)`. 1.0 is perfect.
pub fn imbalance(weights: &[u64]) -> f64 {
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let avg = total as f64 / weights.len() as f64;
    let max = *weights.iter().max().unwrap() as f64;
    max / avg
}

/// Convenience: imbalance of a partition.
pub fn partition_imbalance(g: &Graph, part: &[u32], nparts: usize) -> f64 {
    imbalance(&part_weights(g, part, nparts))
}

/// Capacity-weighted load imbalance: `max_p(w_p / c_p) / (Σw / Σc)`.
///
/// `caps[p]` is part `p`'s relative capacity (work units per second, any
/// common scale); the ideal assignment gives each part weight proportional
/// to its capacity, for which this ratio is 1.0. With uniform capacities it
/// reduces to [`imbalance`].
pub fn imbalance_weighted(weights: &[u64], caps: &[f64]) -> f64 {
    assert_eq!(weights.len(), caps.len(), "one capacity per part");
    let total: u64 = weights.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let cap_sum: f64 = caps.iter().sum();
    if cap_sum <= 0.0 || !cap_sum.is_finite() {
        // Zero / negative / non-finite total capacity has no meaningful
        // ideal rate; NaN here would silently defeat every threshold
        // comparison downstream (`imb <= trigger` is false for NaN).
        return 1.0;
    }
    let ideal_rate = total as f64 / cap_sum;
    weights
        .iter()
        .zip(caps)
        .map(|(&w, &c)| w as f64 / c / ideal_rate)
        .fold(0.0, f64::max)
}

/// Per-part totals of a free-standing weight vector (no graph needed) —
/// the dual-constraint kernels carry their second weight field outside the
/// graph structure.
pub fn weights_of(vwgt: &[u64], part: &[u32], nparts: usize) -> Vec<u64> {
    let mut w = vec![0u64; nparts];
    for v in 0..part.len() {
        w[part[v] as usize] += vwgt[v];
    }
    w
}

/// `true` when every entry of a second weight vector is identical — the
/// degenerate case in which every dual-constraint kernel must delegate
/// bit-exactly to its single-constraint counterpart (the same contract as
/// uniform capacities taking the unweighted integer path).
pub fn dual_uniform(w2: &[u64]) -> bool {
    w2.iter().all(|&w| w == w2[0])
}

/// Dual-constraint effective imbalance: the worse of the two per-constraint
/// capacity-weighted imbalances — the max-of-imbalances objective the dual
/// kernels minimize. Inherits [`imbalance_weighted`]'s degenerate-input
/// guards, so it is defined (never NaN) for any capacity vector.
pub fn imbalance_dual(w1: &[u64], w2: &[u64], caps: &[f64]) -> f64 {
    imbalance_weighted(w1, caps).max(imbalance_weighted(w2, caps))
}

/// Combined integer weight for seeding dual-constraint kernels: each
/// vertex's two weights are normalized by their respective totals and
/// recombined at a fixed integer scale. Balancing the combined weight
/// balances the *sum* of the normalized constraints; the dual repair passes
/// then chase the max.
pub(crate) fn combine_dual(w1: &[u64], w2: &[u64]) -> Vec<u64> {
    assert_eq!(w1.len(), w2.len(), "one second weight per vertex");
    let scale = (1u64 << 20) as f64;
    let t1: u64 = w1.iter().sum();
    let t2: u64 = w2.iter().sum();
    let n1 = if t1 == 0 { 1.0 } else { t1 as f64 };
    let n2 = if t2 == 0 { 1.0 } else { t2 as f64 };
    w1.iter()
        .zip(w2)
        .map(|(&a, &b)| ((a as f64 / n1 + b as f64 / n2) * scale).round() as u64)
        .collect()
}

/// Number of vertices whose assignment differs between two partitions, and
/// the vertex weight that would have to move.
pub fn migration(g: &Graph, from: &[u32], to: &[u32]) -> (usize, u64) {
    let mut count = 0;
    let mut weight = 0;
    for v in 0..g.n() {
        if from[v] != to[v] {
            count += 1;
            weight += g.vwgt[v];
        }
    }
    (count, weight)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph<'static> {
        Graph::from_csr(
            vec![0, 1, 3, 5, 6],
            vec![1, 0, 2, 1, 3, 2],
            vec![1, 2, 3, 4],
        )
    }

    #[test]
    fn cut_of_path() {
        let g = path4();
        assert_eq!(edge_cut(&g, &[0, 0, 1, 1]), 1);
        assert_eq!(edge_cut(&g, &[0, 1, 0, 1]), 3);
        assert_eq!(edge_cut(&g, &[0, 0, 0, 0]), 0);
    }

    #[test]
    fn weights_and_imbalance() {
        let g = path4();
        let w = part_weights(&g, &[0, 0, 1, 1], 2);
        assert_eq!(w, vec![3, 7]);
        assert!((imbalance(&w) - 1.4).abs() < 1e-12);
        assert!((imbalance(&[5, 5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_return_defined_imbalance() {
        // All-empty parts: no load is perfectly balanced.
        assert_eq!(imbalance(&[0, 0, 0]), 1.0);
        assert_eq!(imbalance_weighted(&[0, 0], &[1.0, 1.0]), 1.0);
        // Zero / non-finite total capacity: defined 1.0, never NaN.
        assert_eq!(imbalance_weighted(&[3, 5], &[0.0, 0.0]), 1.0);
        assert_eq!(imbalance_weighted(&[3, 5], &[f64::NAN, 1.0]), 1.0);
        assert_eq!(imbalance_weighted(&[3, 5], &[-1.0, 1.0]), 1.0);
    }

    #[test]
    fn dual_imbalance_takes_the_binding_constraint() {
        let caps = [1.0, 1.0];
        // Constraint 1 balanced, constraint 2 badly skewed.
        let imb = imbalance_dual(&[5, 5], &[9, 1], &caps);
        assert!((imb - 1.8).abs() < 1e-12, "got {imb}");
        // Symmetric case.
        let imb = imbalance_dual(&[9, 1], &[5, 5], &caps);
        assert!((imb - 1.8).abs() < 1e-12, "got {imb}");
        // Degenerate capacities stay defined.
        assert_eq!(imbalance_dual(&[3, 5], &[1, 1], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn dual_uniform_detects_constant_vectors() {
        assert!(dual_uniform(&[]));
        assert!(dual_uniform(&[4, 4, 4]));
        assert!(!dual_uniform(&[4, 4, 5]));
    }

    #[test]
    fn migration_counts() {
        let g = path4();
        let (n, w) = migration(&g, &[0, 0, 1, 1], &[0, 1, 1, 0]);
        assert_eq!(n, 2);
        assert_eq!(w, 2 + 4);
    }
}
