//! # plum-partition — multilevel k-way graph partitioning
//!
//! The repartitioning substrate for the PLUM reproduction, in the mold of
//! (parallel) MeTiS \[15\]: heavy-edge-matching coarsening, greedy graph
//! growing on the coarsest graph, and boundary-greedy refinement during
//! uncoarsening. A dedicated repartitioning entry point seeds from the
//! previous partition so most dual vertices stay put and remapping volume
//! stays low — the property §4.2 of the paper relies on.
//!
//! ```
//! use plum_partition::{Graph, PartitionConfig, partition_kway, quality};
//!
//! // An 8-vertex ring.
//! let xadj = vec![0, 2, 4, 6, 8, 10, 12, 14, 16];
//! let adjncy = vec![7, 1, 0, 2, 1, 3, 2, 4, 3, 5, 4, 6, 5, 7, 6, 0];
//! let g = Graph::from_csr(xadj, adjncy, vec![1; 8]);
//! let part = partition_kway(&g, &PartitionConfig::new(2));
//! let q = quality(&g, &part, 2);
//! assert_eq!(q.cut, 2); // a ring's optimal bisection cuts exactly 2 edges
//! ```

mod bisect;
mod coarsen;
mod diffusion;
mod diffusion2;
mod distributed;
mod graph;
mod knapsack;
mod kway;
mod metrics;
#[cfg(test)]
mod proptests;
mod repart;
mod rng;
mod sfc;
mod voronoi;

pub use bisect::{bisect, grow_bisection, refine_bisection};
pub use coarsen::{coarsen_once, contract, heavy_edge_matching};
pub use diffusion::{diffuse, DiffusionConfig, DiffusionResult};
pub use diffusion2::{
    diffusion2_balance, diffusion2_balance_dual, diffusion2_body, diffusion2_body_dual,
    diffusion2_distributed, rank_adjacency, solve_flows, FlowSolve, DIFFUSION2_MAX_ROUNDS,
};
pub use distributed::{
    repartition_body, repartition_body_dual, repartition_distributed, DistPartition,
};
pub use graph::{Graph, GraphView};
pub use knapsack::{
    knapsack_body, knapsack_body_dual, knapsack_distributed, knapsack_partition,
    knapsack_partition_dual,
};
pub use kway::{
    partition_kway, partition_kway_dual, partition_kway_weighted, quality, PartitionConfig,
    PartitionQuality,
};
pub use metrics::{
    dual_uniform, edge_cut, imbalance, imbalance_dual, imbalance_weighted, migration, part_weights,
    partition_imbalance, weights_of,
};
pub use repart::{repartition_kway, repartition_kway_dual, repartition_kway_weighted};
pub use rng::Rng;
pub use sfc::{
    sfc_body, sfc_body_dual, sfc_diffuse, sfc_diffuse_body, sfc_diffuse_body_dual,
    sfc_diffuse_dual, sfc_distributed, sfc_effective_imbalance, sfc_effective_imbalance_dual,
    sfc_order, sfc_partition, sfc_partition_dual, sfc_split, sfc_split_dual,
};
pub use voronoi::{
    voronoi_balance, voronoi_balance_dual, voronoi_body, voronoi_body_dual, voronoi_distributed,
    voronoi_partition, voronoi_partition_dual, VORONOI_ROUNDS,
};
