//! A tiny deterministic RNG (splitmix64) so the partitioner has reproducible
//! randomized tie-breaking without an external dependency.

#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_add(0x9e3779b97f4a7c15),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            xs.swap(i, self.below(i + 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(7);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }
}
