//! Knapsack / cost-bin packing: longest-processing-time greedy assignment
//! into capacity-weighted bins.
//!
//! The locality-insensitive end of the partitioner portfolio, after AMReX's
//! `DistributionMapping::makeKnapSack`: when imbalance is extreme, the cut
//! hardly matters and the fastest way back to balance is to treat vertices
//! as independent jobs and pack them onto processors by weight. LPT greedy
//! is within 4/3 of optimal makespan, deterministic, and needs no graph at
//! all.
//!
//! The SPMD body follows the [`crate::distributed::repartition_body`]
//! contract: replicated control flow, machine-model-independent result,
//! virtual time from compute charges plus real collective traffic.

use plum_parsim::{makespan, spmd, words_for_bytes, Comm, MachineModel, TraceLog};

use crate::distributed::DistPartition;
use crate::metrics::dual_uniform;

/// Bytes per (id, weight) pair in the distributed assignment exchange.
const PAIR_BYTES: usize = 12;

/// Bytes per (id, weight, weight2) triple in the dual-constraint exchange.
const DUAL_PAIR_BYTES: usize = 20;

/// LPT greedy bin packing. Vertices in `(weight desc, id asc)` order each go
/// to the bin whose *post-assignment* effective load `(w_p + w) / c_p` is
/// smallest, lowest bin id breaking ties — a total order, so the result is
/// deterministic.
pub fn knapsack_partition(vwgt: &[u64], nparts: usize, caps: &[f64]) -> Vec<u32> {
    assert_eq!(caps.len(), nparts, "one capacity per part");
    let cap_sum: f64 = caps.iter().sum();
    let caps: Vec<f64> = if cap_sum <= 0.0 || !cap_sum.is_finite() {
        vec![1.0; nparts]
    } else {
        caps.to_vec()
    };
    let mut order: Vec<u32> = (0..vwgt.len() as u32).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(vwgt[v as usize]), v));
    let mut part = vec![0u32; vwgt.len()];
    let mut w = vec![0u64; nparts];
    for &v in &order {
        let wv = vwgt[v as usize];
        let mut best = 0usize;
        let mut best_load = f64::INFINITY;
        for p in 0..nparts {
            let load = (w[p] + wv) as f64 / caps[p];
            if load < best_load {
                best = p;
                best_load = load;
            }
        }
        part[v as usize] = best as u32;
        w[best] += wv;
    }
    part
}

/// Dual-constraint LPT packing: every vertex carries two weights (e.g.
/// fluid work and particle work) and each goes to the bin minimizing the
/// post-assignment *max-of-constraints* effective load, where each
/// constraint is normalized by its own total so neither scale dominates.
/// Vertices are packed in descending combined-normalized-size order (id
/// tie-break — a total order, so the result is deterministic). A uniform
/// second weight vector delegates to [`knapsack_partition`] bit-exactly.
///
/// The greedy bound generalizes: both per-constraint capacity-weighted
/// imbalances stay below `2 + s_max · Σc / min(c)` where `s_max` is the
/// largest combined normalized vertex size — the property the dual
/// proptests pin.
pub fn knapsack_partition_dual(w1: &[u64], w2: &[u64], nparts: usize, caps: &[f64]) -> Vec<u32> {
    assert_eq!(w1.len(), w2.len(), "one second weight per vertex");
    if dual_uniform(w2) {
        return knapsack_partition(w1, nparts, caps);
    }
    assert_eq!(caps.len(), nparts, "one capacity per part");
    let cap_sum: f64 = caps.iter().sum();
    let caps: Vec<f64> = if cap_sum <= 0.0 || !cap_sum.is_finite() {
        vec![1.0; nparts]
    } else {
        caps.to_vec()
    };
    let t1: u64 = w1.iter().sum();
    let t2: u64 = w2.iter().sum();
    let n1 = if t1 == 0 { 1.0 } else { t1 as f64 };
    let n2 = if t2 == 0 { 1.0 } else { t2 as f64 };
    let size = |v: usize| w1[v] as f64 / n1 + w2[v] as f64 / n2;
    let mut order: Vec<u32> = (0..w1.len() as u32).collect();
    order.sort_unstable_by(|&a, &b| {
        size(b as usize)
            .partial_cmp(&size(a as usize))
            .unwrap()
            .then(a.cmp(&b))
    });
    let mut part = vec![0u32; w1.len()];
    let mut b1 = vec![0u64; nparts];
    let mut b2 = vec![0u64; nparts];
    for &v in &order {
        let v = v as usize;
        let mut best = 0usize;
        let mut best_load = f64::INFINITY;
        for p in 0..nparts {
            let l1 = (b1[p] + w1[v]) as f64 / n1;
            let l2 = (b2[p] + w2[v]) as f64 / n2;
            let load = l1.max(l2) / caps[p];
            if load < best_load {
                best = p;
                best_load = load;
            }
        }
        part[v] = best as u32;
        b1[best] += w1[v];
        b2[best] += w2[v];
    }
    part
}

/// SPMD body of the knapsack packer: local weight sort, alltoallv
/// assignment exchange, allreduce'd bin loads. Returns the same partition
/// [`knapsack_partition`] computes serially — bit-identical on every rank
/// and under every machine model.
pub fn knapsack_body(
    comm: &mut Comm,
    vwgt: &[u64],
    owner: &[u32],
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
) -> Vec<u32> {
    let rank = comm.rank();
    let nranks = comm.nranks();
    let part = knapsack_partition(vwgt, nparts, caps);
    // Local sort plus the serial packing sweep on the gathered weights.
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    let units = vertex_units * n_local as f64;
    if units > 0.0 {
        comm.compute(units);
    }
    // Each rank ships its local (id, weight) pairs to the home rank of the
    // destination bin; bin loads are summed by allreduce.
    let mut counts = vec![0u64; nranks];
    let mut local_w = vec![0u64; nparts];
    for v in 0..part.len() {
        if owner[v] as usize != rank {
            continue;
        }
        local_w[part[v] as usize] += vwgt[v];
        counts[part[v] as usize * nranks / nparts] += 1;
    }
    let items: Vec<(usize, u64, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(dst, &c)| (dst, words_for_bytes(PAIR_BYTES * c as usize), c))
        .collect();
    comm.alltoallv_sparse(items);
    let global_w = comm.allreduce(nparts as u64, local_w, |a, b| {
        a.iter().zip(&b).map(|(x, y)| x + y).collect::<Vec<u64>>()
    });
    let total: u64 = global_w.iter().sum();
    assert_eq!(
        total,
        vwgt.iter().sum::<u64>(),
        "allreduce'd bin loads diverged"
    );
    part
}

/// Dual-constraint SPMD body: the same exchange as [`knapsack_body`] but
/// shipping (id, w1, w2) triples and allreduce-checking *both* per-bin load
/// vectors. A uniform second weight vector delegates to the single-path
/// body, so its byte counts (and thus virtual times) are untouched.
pub fn knapsack_body_dual(
    comm: &mut Comm,
    w1: &[u64],
    w2: &[u64],
    owner: &[u32],
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
) -> Vec<u32> {
    if dual_uniform(w2) {
        return knapsack_body(comm, w1, owner, nparts, caps, vertex_units);
    }
    let rank = comm.rank();
    let nranks = comm.nranks();
    let part = knapsack_partition_dual(w1, w2, nparts, caps);
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    let units = vertex_units * n_local as f64;
    if units > 0.0 {
        comm.compute(units);
    }
    let mut counts = vec![0u64; nranks];
    let mut local_w1 = vec![0u64; nparts];
    let mut local_w2 = vec![0u64; nparts];
    for v in 0..part.len() {
        if owner[v] as usize != rank {
            continue;
        }
        local_w1[part[v] as usize] += w1[v];
        local_w2[part[v] as usize] += w2[v];
        counts[part[v] as usize * nranks / nparts] += 1;
    }
    let items: Vec<(usize, u64, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(dst, &c)| (dst, words_for_bytes(DUAL_PAIR_BYTES * c as usize), c))
        .collect();
    comm.alltoallv_sparse(items);
    let sum = |a: Vec<u64>, b: Vec<u64>| a.iter().zip(&b).map(|(x, y)| x + y).collect::<Vec<u64>>();
    let g1 = comm.allreduce(nparts as u64, local_w1, sum);
    let g2 = comm.allreduce(nparts as u64, local_w2, sum);
    assert_eq!(
        g1.iter().sum::<u64>(),
        w1.iter().sum::<u64>(),
        "allreduce'd bin loads diverged (constraint 1)"
    );
    assert_eq!(
        g2.iter().sum::<u64>(),
        w2.iter().sum::<u64>(),
        "allreduce'd bin loads diverged (constraint 2)"
    );
    part
}

/// Standalone harness for [`knapsack_body`], mirroring
/// [`crate::repartition_distributed`]. Panics if ranks disagree.
#[allow(clippy::too_many_arguments)]
pub fn knapsack_distributed(
    vwgt: &[u64],
    owner: &[u32],
    nparts: usize,
    caps: &[f64],
    nranks: usize,
    model: MachineModel,
    vertex_units: f64,
) -> DistPartition {
    let results = spmd(nranks, model, |comm| {
        comm.phase("partition", |c| {
            knapsack_body(c, vwgt, owner, nparts, caps, vertex_units)
        })
    });
    let part = results[0].value.clone();
    for r in &results {
        assert_eq!(r.value, part, "rank {} disagrees on the partition", r.rank);
    }
    DistPartition {
        part,
        makespan: makespan(&results),
        trace: TraceLog::from_results(&results),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::imbalance_weighted;

    #[test]
    fn lpt_balances_skewed_weights_tightly() {
        // One giant job plus many small ones: LPT puts the giant alone.
        let mut vwgt = vec![1u64; 63];
        vwgt.push(60);
        let part = knapsack_partition(&vwgt, 4, &[1.0; 4]);
        let mut w = [0u64; 4];
        for v in 0..vwgt.len() {
            w[part[v] as usize] += vwgt[v];
        }
        let imb = imbalance_weighted(&w, &[1.0; 4]);
        assert!(imb < 2.0, "LPT imbalance {imb} (loads {w:?})");
        let giant_bin = part[63] as usize;
        assert_eq!(w[giant_bin], 60, "giant bin took extra load: {w:?}");
    }

    #[test]
    fn capacity_weighted_bins_attract_proportional_load() {
        let vwgt = vec![2u64; 200];
        let caps = [3.0, 1.0, 1.0, 1.0];
        let part = knapsack_partition(&vwgt, 4, &caps);
        let mut w = [0u64; 4];
        for v in 0..vwgt.len() {
            w[part[v] as usize] += vwgt[v];
        }
        let imb = imbalance_weighted(&w, &caps);
        assert!(
            imb < 1.05,
            "capacity-weighted imbalance {imb} (loads {w:?})"
        );
        assert!(
            w[0] > w[1],
            "triple-capacity bin did not attract load: {w:?}"
        );
    }

    #[test]
    fn dual_packing_balances_both_constraints() {
        // Constraint 1 uniform, constraint 2 concentrated in few heavy
        // vertices: single-constraint packing on w1 ignores w2 entirely.
        // With uniform w1 the LPT tie-break round-robins by id, so heavy
        // vertices at id ≡ 0 (mod 8) all land in the same bin of 4.
        let w1 = vec![1u64; 64];
        let w2: Vec<u64> = (0..64u64)
            .map(|v| if v % 8 == 0 { 100 } else { 1 })
            .collect();
        let caps = vec![1.0; 4];
        let single = knapsack_partition(&w1, 4, &caps);
        let dual = knapsack_partition_dual(&w1, &w2, 4, &caps);
        let imb = |part: &[u32], w: &[u64]| {
            imbalance_weighted(&crate::metrics::weights_of(w, part, 4), &caps)
        };
        assert!(
            imb(&single, &w2) > 1.5,
            "single-constraint packing should leave w2 imbalanced: {}",
            imb(&single, &w2)
        );
        assert!(
            imb(&dual, &w1) < 1.35,
            "dual w1 imbalance {}",
            imb(&dual, &w1)
        );
        assert!(
            imb(&dual, &w2) < 1.35,
            "dual w2 imbalance {}",
            imb(&dual, &w2)
        );
    }

    #[test]
    fn dual_reduces_to_single_when_second_weights_uniform() {
        let w1: Vec<u64> = (0..100u64).map(|v| 1 + (v * 13) % 17).collect();
        let caps = [1.5, 1.0, 0.5, 1.0];
        let single = knapsack_partition(&w1, 4, &caps);
        for c in [1u64, 7] {
            let w2 = vec![c; 100];
            assert_eq!(knapsack_partition_dual(&w1, &w2, 4, &caps), single);
        }
    }

    #[test]
    fn dual_distributed_matches_serial_and_is_model_invariant() {
        let w1: Vec<u64> = (0..300u64).map(|v| 1 + (v * v) % 19).collect();
        let w2: Vec<u64> = (0..300u64)
            .map(|v| if v % 37 == 0 { 80 } else { 1 })
            .collect();
        let caps = vec![1.0; 8];
        let owner: Vec<u32> = (0..300).map(|v| (v * 4 / 300) as u32).collect();
        let serial = knapsack_partition_dual(&w1, &w2, 8, &caps);
        let run = |model: MachineModel, units: f64| {
            let results = spmd(4, model, |comm| {
                comm.phase("partition", |c| {
                    knapsack_body_dual(c, &w1, &w2, &owner, 8, &caps, units)
                })
            });
            let part = results[0].value.clone();
            for r in &results {
                assert_eq!(r.value, part, "rank {} disagrees", r.rank);
            }
            (part, makespan(&results))
        };
        let (a, ma) = run(MachineModel::sp2(), 16.0);
        let (b, mb) = run(MachineModel::zero(), 0.0);
        assert_eq!(a, serial, "dual SPMD body diverged from serial");
        assert_eq!(a, b, "dual partition depends on the machine model");
        assert!(ma > mb, "sp2 run should cost virtual time");
    }

    #[test]
    fn distributed_matches_serial_and_is_model_invariant() {
        let vwgt: Vec<u64> = (0..400u64).map(|v| 1 + (v * v) % 23).collect();
        let caps = vec![1.0; 8];
        let owner: Vec<u32> = (0..400).map(|v| (v * 4 / 400) as u32).collect();
        let serial = knapsack_partition(&vwgt, 8, &caps);
        let a = knapsack_distributed(&vwgt, &owner, 8, &caps, 4, MachineModel::sp2(), 16.0);
        let b = knapsack_distributed(&vwgt, &owner, 8, &caps, 4, MachineModel::zero(), 0.0);
        assert_eq!(a.part, serial, "SPMD body diverged from serial");
        assert_eq!(a.part, b.part, "partition depends on the machine model");
        assert!(a.makespan > b.makespan, "sp2 run should cost virtual time");
    }
}
