//! Knapsack / cost-bin packing: longest-processing-time greedy assignment
//! into capacity-weighted bins.
//!
//! The locality-insensitive end of the partitioner portfolio, after AMReX's
//! `DistributionMapping::makeKnapSack`: when imbalance is extreme, the cut
//! hardly matters and the fastest way back to balance is to treat vertices
//! as independent jobs and pack them onto processors by weight. LPT greedy
//! is within 4/3 of optimal makespan, deterministic, and needs no graph at
//! all.
//!
//! The SPMD body follows the [`crate::distributed::repartition_body`]
//! contract: replicated control flow, machine-model-independent result,
//! virtual time from compute charges plus real collective traffic.

use plum_parsim::{makespan, spmd, words_for_bytes, Comm, MachineModel, TraceLog};

use crate::distributed::DistPartition;

/// Bytes per (id, weight) pair in the distributed assignment exchange.
const PAIR_BYTES: usize = 12;

/// LPT greedy bin packing. Vertices in `(weight desc, id asc)` order each go
/// to the bin whose *post-assignment* effective load `(w_p + w) / c_p` is
/// smallest, lowest bin id breaking ties — a total order, so the result is
/// deterministic.
pub fn knapsack_partition(vwgt: &[u64], nparts: usize, caps: &[f64]) -> Vec<u32> {
    assert_eq!(caps.len(), nparts, "one capacity per part");
    let cap_sum: f64 = caps.iter().sum();
    let caps: Vec<f64> = if cap_sum <= 0.0 || !cap_sum.is_finite() {
        vec![1.0; nparts]
    } else {
        caps.to_vec()
    };
    let mut order: Vec<u32> = (0..vwgt.len() as u32).collect();
    order.sort_unstable_by_key(|&v| (std::cmp::Reverse(vwgt[v as usize]), v));
    let mut part = vec![0u32; vwgt.len()];
    let mut w = vec![0u64; nparts];
    for &v in &order {
        let wv = vwgt[v as usize];
        let mut best = 0usize;
        let mut best_load = f64::INFINITY;
        for p in 0..nparts {
            let load = (w[p] + wv) as f64 / caps[p];
            if load < best_load {
                best = p;
                best_load = load;
            }
        }
        part[v as usize] = best as u32;
        w[best] += wv;
    }
    part
}

/// SPMD body of the knapsack packer: local weight sort, alltoallv
/// assignment exchange, allreduce'd bin loads. Returns the same partition
/// [`knapsack_partition`] computes serially — bit-identical on every rank
/// and under every machine model.
pub fn knapsack_body(
    comm: &mut Comm,
    vwgt: &[u64],
    owner: &[u32],
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
) -> Vec<u32> {
    let rank = comm.rank();
    let nranks = comm.nranks();
    let part = knapsack_partition(vwgt, nparts, caps);
    // Local sort plus the serial packing sweep on the gathered weights.
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    let units = vertex_units * n_local as f64;
    if units > 0.0 {
        comm.compute(units);
    }
    // Each rank ships its local (id, weight) pairs to the home rank of the
    // destination bin; bin loads are summed by allreduce.
    let mut counts = vec![0u64; nranks];
    let mut local_w = vec![0u64; nparts];
    for v in 0..part.len() {
        if owner[v] as usize != rank {
            continue;
        }
        local_w[part[v] as usize] += vwgt[v];
        counts[part[v] as usize * nranks / nparts] += 1;
    }
    let items: Vec<(usize, u64, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(dst, &c)| (dst, words_for_bytes(PAIR_BYTES * c as usize), c))
        .collect();
    comm.alltoallv_sparse(items);
    let global_w = comm.allreduce(nparts as u64, local_w, |a, b| {
        a.iter().zip(&b).map(|(x, y)| x + y).collect::<Vec<u64>>()
    });
    let total: u64 = global_w.iter().sum();
    assert_eq!(
        total,
        vwgt.iter().sum::<u64>(),
        "allreduce'd bin loads diverged"
    );
    part
}

/// Standalone harness for [`knapsack_body`], mirroring
/// [`crate::repartition_distributed`]. Panics if ranks disagree.
#[allow(clippy::too_many_arguments)]
pub fn knapsack_distributed(
    vwgt: &[u64],
    owner: &[u32],
    nparts: usize,
    caps: &[f64],
    nranks: usize,
    model: MachineModel,
    vertex_units: f64,
) -> DistPartition {
    let results = spmd(nranks, model, |comm| {
        comm.phase("partition", |c| {
            knapsack_body(c, vwgt, owner, nparts, caps, vertex_units)
        })
    });
    let part = results[0].value.clone();
    for r in &results {
        assert_eq!(r.value, part, "rank {} disagrees on the partition", r.rank);
    }
    DistPartition {
        part,
        makespan: makespan(&results),
        trace: TraceLog::from_results(&results),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::imbalance_weighted;

    #[test]
    fn lpt_balances_skewed_weights_tightly() {
        // One giant job plus many small ones: LPT puts the giant alone.
        let mut vwgt = vec![1u64; 63];
        vwgt.push(60);
        let part = knapsack_partition(&vwgt, 4, &[1.0; 4]);
        let mut w = [0u64; 4];
        for v in 0..vwgt.len() {
            w[part[v] as usize] += vwgt[v];
        }
        let imb = imbalance_weighted(&w, &[1.0; 4]);
        assert!(imb < 2.0, "LPT imbalance {imb} (loads {w:?})");
        let giant_bin = part[63] as usize;
        assert_eq!(w[giant_bin], 60, "giant bin took extra load: {w:?}");
    }

    #[test]
    fn capacity_weighted_bins_attract_proportional_load() {
        let vwgt = vec![2u64; 200];
        let caps = [3.0, 1.0, 1.0, 1.0];
        let part = knapsack_partition(&vwgt, 4, &caps);
        let mut w = [0u64; 4];
        for v in 0..vwgt.len() {
            w[part[v] as usize] += vwgt[v];
        }
        let imb = imbalance_weighted(&w, &caps);
        assert!(
            imb < 1.05,
            "capacity-weighted imbalance {imb} (loads {w:?})"
        );
        assert!(
            w[0] > w[1],
            "triple-capacity bin did not attract load: {w:?}"
        );
    }

    #[test]
    fn distributed_matches_serial_and_is_model_invariant() {
        let vwgt: Vec<u64> = (0..400u64).map(|v| 1 + (v * v) % 23).collect();
        let caps = vec![1.0; 8];
        let owner: Vec<u32> = (0..400).map(|v| (v * 4 / 400) as u32).collect();
        let serial = knapsack_partition(&vwgt, 8, &caps);
        let a = knapsack_distributed(&vwgt, &owner, 8, &caps, 4, MachineModel::sp2(), 16.0);
        let b = knapsack_distributed(&vwgt, &owner, 8, &caps, 4, MachineModel::zero(), 0.0);
        assert_eq!(a.part, serial, "SPMD body diverged from serial");
        assert_eq!(a.part, b.part, "partition depends on the machine model");
        assert!(a.makespan > b.makespan, "sp2 run should cost virtual time");
    }
}
