//! Graph coarsening by heavy-edge matching (HEM) and contraction — the
//! first phase of the multilevel scheme ("reduces the size of the graph by
//! collapsing vertices and edges using a heavy edge matching scheme").

use crate::graph::Graph;
use crate::rng::Rng;

/// Compute a heavy-edge matching: vertices are visited in random order and
/// each unmatched vertex matches its unmatched neighbour with the heaviest
/// connecting edge. Returns `mate[v]` (= `v` itself if unmatched).
pub fn heavy_edge_matching(g: &Graph, rng: &mut Rng) -> Vec<u32> {
    let n = g.n();
    let mut mate: Vec<u32> = (0..n as u32).collect();
    let mut matched = vec![false; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);
    for &v in &order {
        let v = v as usize;
        if matched[v] {
            continue;
        }
        let mut best: Option<(u32, u32)> = None; // (neighbor, weight)
        for (u, w) in g.edges(v) {
            if !matched[u as usize] && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        if let Some((u, _)) = best {
            matched[v] = true;
            matched[u as usize] = true;
            mate[v] = u;
            mate[u as usize] = v as u32;
        }
    }
    mate
}

/// Contract a matching: matched pairs merge into one coarse vertex (weights
/// summed, parallel edges merged with summed weights, self-loops dropped).
/// Returns the coarse graph and `cmap[fine] = coarse`.
pub fn contract(g: &Graph, mate: &[u32]) -> (Graph<'static>, Vec<u32>) {
    let n = g.n();
    let mut cmap = vec![u32::MAX; n];
    let mut nc = 0u32;
    for v in 0..n {
        if cmap[v] != u32::MAX {
            continue;
        }
        cmap[v] = nc;
        let m = mate[v] as usize;
        if m != v {
            cmap[m] = nc;
        }
        nc += 1;
    }

    let nc = nc as usize;
    let mut xadj = Vec::with_capacity(nc + 1);
    let mut adjncy: Vec<u32> = Vec::with_capacity(g.adjncy.len());
    let mut adjwgt: Vec<u32> = Vec::with_capacity(g.adjncy.len());
    let mut vwgt = vec![0u64; nc];
    // Scratch accumulator with timestamping, the standard trick to merge
    // parallel edges in O(degree).
    let mut acc = vec![0u32; nc];
    let mut stamp = vec![u32::MAX; nc];
    let mut touched: Vec<u32> = Vec::new();

    xadj.push(0u32);
    // Iterate coarse vertices in fine order of their representatives.
    let mut reps: Vec<(u32, usize)> = Vec::with_capacity(nc);
    {
        let mut seen = vec![false; nc];
        for v in 0..n {
            let c = cmap[v] as usize;
            if !seen[c] {
                seen[c] = true;
                reps.push((cmap[v], v));
            }
        }
    }
    for (ci, (c, rep)) in reps.iter().enumerate() {
        debug_assert_eq!(*c as usize, ci);
        let members: [usize; 2] = [*rep, mate[*rep] as usize];
        touched.clear();
        for &v in members
            .iter()
            .take(if members[0] == members[1] { 1 } else { 2 })
        {
            vwgt[ci] += g.vwgt[v];
            for (u, w) in g.edges(v) {
                let cu = cmap[u as usize] as usize;
                if cu == ci {
                    continue; // internal edge of the pair
                }
                if stamp[cu] != ci as u32 {
                    stamp[cu] = ci as u32;
                    acc[cu] = 0;
                    touched.push(cu as u32);
                }
                acc[cu] += w;
            }
        }
        for &cu in &touched {
            adjncy.push(cu);
            adjwgt.push(acc[cu as usize]);
        }
        xadj.push(adjncy.len() as u32);
    }

    let coarse = Graph {
        xadj: xadj.into(),
        adjncy: adjncy.into(),
        adjwgt: adjwgt.into(),
        vwgt: vwgt.into(),
    };
    debug_assert!(coarse.check().is_ok(), "{:?}", coarse.check());
    (coarse, cmap)
}

/// One HEM + contraction step.
pub fn coarsen_once(g: &Graph, rng: &mut Rng) -> (Graph<'static>, Vec<u32>) {
    let mate = heavy_edge_matching(g, rng);
    contract(g, &mate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_graph(w: usize, h: usize) -> Graph<'static> {
        let n = w * h;
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        for y in 0..h {
            for x in 0..w {
                if x > 0 {
                    adjncy.push((y * w + x - 1) as u32);
                }
                if x + 1 < w {
                    adjncy.push((y * w + x + 1) as u32);
                }
                if y > 0 {
                    adjncy.push(((y - 1) * w + x) as u32);
                }
                if y + 1 < h {
                    adjncy.push(((y + 1) * w + x) as u32);
                }
                xadj.push(adjncy.len() as u32);
            }
        }
        Graph::from_csr(xadj, adjncy, vec![1; n])
    }

    #[test]
    fn matching_is_involutive() {
        let g = grid_graph(8, 8);
        let mut rng = Rng::new(1);
        let mate = heavy_edge_matching(&g, &mut rng);
        for v in 0..g.n() {
            assert_eq!(mate[mate[v] as usize] as usize, v, "matching broken at {v}");
        }
    }

    #[test]
    fn contraction_preserves_total_weight() {
        let g = grid_graph(10, 10);
        let mut rng = Rng::new(2);
        let (cg, cmap) = coarsen_once(&g, &mut rng);
        assert_eq!(cg.total_vwgt(), g.total_vwgt());
        assert!(cg.n() < g.n(), "graph must shrink");
        assert!(cg.n() >= g.n() / 2, "cannot shrink by more than half");
        for v in 0..g.n() {
            assert!((cmap[v] as usize) < cg.n());
        }
        cg.check().unwrap();
    }

    #[test]
    fn repeated_coarsening_reaches_small_graph() {
        let mut g = grid_graph(16, 16);
        let mut rng = Rng::new(3);
        let w0 = g.total_vwgt();
        for _ in 0..10 {
            if g.n() <= 8 {
                break;
            }
            let (cg, _) = coarsen_once(&g, &mut rng);
            if cg.n() == g.n() {
                break; // no progress possible
            }
            g = cg;
        }
        assert!(g.n() <= 16, "coarsening stalled at {} vertices", g.n());
        assert_eq!(g.total_vwgt(), w0);
    }

    #[test]
    fn heavy_edges_preferred() {
        // Triangle with one heavy edge: 0-1 (w=10), 1-2 (w=1), 0-2 (w=1).
        let g = Graph {
            xadj: vec![0, 2, 4, 6].into(),
            adjncy: vec![1, 2, 0, 2, 0, 1].into(),
            adjwgt: vec![10, 1, 10, 1, 1, 1].into(),
            vwgt: vec![1, 1, 1].into(),
        };
        g.check().unwrap();
        for seed in 0..10 {
            let mut rng = Rng::new(seed);
            let mate = heavy_edge_matching(&g, &mut rng);
            // Whichever of 0/1 is visited first picks the heavy edge.
            assert!(
                (mate[0] == 1 && mate[1] == 0) || mate[2] != 2,
                "seed {seed}: heavy edge ignored: {mate:?}"
            );
        }
    }
}
