//! Repartitioning seeded by the previous partition.
//!
//! "An additional benefit of the algorithm is the potential reduction in
//! remapping cost since parallel MeTiS, unlike the serial version, uses the
//! previous partition as the initial guess for the repartitioning." When the
//! weights have drifted (the mesh adapted), starting from the old assignment
//! and diffusing load across part boundaries keeps most dual vertices where
//! they were, so the similarity matrix stays strongly diagonal and the
//! remapping volume small.

use crate::graph::Graph;
use crate::kway::{
    capacity_fractions, combined_view, dual_repair, kway_balance, kway_refine_pass, part_ceilings,
    partition_kway_impl, PartitionConfig,
};
use crate::metrics::{dual_uniform, imbalance_weighted, part_weights, partition_imbalance};
use crate::rng::Rng;

/// Repartition `g` starting from `prev`. Falls back to a fresh multilevel
/// partition if diffusion cannot reach the balance tolerance (e.g. the old
/// partition is pathologically concentrated).
pub fn repartition_kway(g: &Graph, cfg: &PartitionConfig, prev: &[u32]) -> Vec<u32> {
    repartition_kway_impl(g, cfg, prev, None)
}

/// Capacity-weighted repartitioning: diffuse from `prev` toward per-part
/// loads proportional to `caps` (relative processor capacities). Uniform
/// capacities delegate to [`repartition_kway`] exactly.
pub fn repartition_kway_weighted(
    g: &Graph,
    cfg: &PartitionConfig,
    prev: &[u32],
    caps: &[f64],
) -> Vec<u32> {
    match capacity_fractions(caps, cfg.nparts) {
        None => repartition_kway_impl(g, cfg, prev, None),
        Some(frac) => repartition_kway_impl(g, cfg, prev, Some(&frac)),
    }
}

/// Dual-constraint repartitioning: diffuse from `prev` on the combined
/// totals-normalized weight (keeping most vertices where they were), then
/// repair the true weight pair under the max-of-imbalances objective via
/// [`dual_repair`]. A uniform second weight vector delegates to
/// [`repartition_kway_weighted`] bit-exactly.
pub fn repartition_kway_dual(
    g: &Graph,
    w2: &[u64],
    cfg: &PartitionConfig,
    prev: &[u32],
    caps: &[f64],
) -> Vec<u32> {
    assert_eq!(w2.len(), g.n(), "one second weight per vertex");
    if dual_uniform(w2) {
        return repartition_kway_weighted(g, cfg, prev, caps);
    }
    if cfg.nparts == 1 {
        return vec![0; g.n()];
    }
    let frac = capacity_fractions(caps, cfg.nparts);
    let part = repartition_diffuse(&combined_view(g, w2), cfg, prev, frac.as_deref());
    dual_repair(g, w2, cfg, frac.as_deref(), caps, part)
}

/// The diffusion core: balance/refine rounds from `prev`, *without* the
/// fresh-partition fallback. The distributed repartitioner's coarsest solve
/// uses this directly — on a coarse graph the achieved imbalance is limited
/// by vertex granularity (a fresh partition cannot beat it either), and a
/// fresh relabeling there would destroy the seed alignment that keeps
/// migration volume and, under heterogeneous capacities, the part↔processor
/// sizing correct. Residual imbalance is repaired during uncoarsening.
pub(crate) fn repartition_diffuse(
    g: &Graph,
    cfg: &PartitionConfig,
    prev: &[u32],
    frac: Option<&[f64]>,
) -> Vec<u32> {
    assert_eq!(prev.len(), g.n());
    if cfg.nparts == 1 {
        return vec![0; g.n()];
    }
    let mut rng = Rng::new(cfg.seed ^ 0x5265_7061); // "Repa"
    let mut part = prev.to_vec();
    let max_w = part_ceilings(g.total_vwgt(), cfg, frac);
    let mut weights = part_weights(g, &part, cfg.nparts);

    // Diffuse: alternate forced balancing with cut refinement.
    for _ in 0..4 {
        kway_balance(g, &mut part, &mut weights, &max_w);
        for _ in 0..cfg.refine_passes {
            if kway_refine_pass(g, &mut part, &mut weights, &max_w, &mut rng) == 0 {
                break;
            }
        }
        if weights.iter().zip(&max_w).all(|(&w, &m)| w <= m) {
            break;
        }
    }
    part
}

pub(crate) fn repartition_kway_impl(
    g: &Graph,
    cfg: &PartitionConfig,
    prev: &[u32],
    frac: Option<&[f64]>,
) -> Vec<u32> {
    let part = repartition_diffuse(g, cfg, prev, frac);
    if cfg.nparts == 1 {
        return part;
    }
    let achieved = match frac {
        None => partition_imbalance(g, &part, cfg.nparts),
        Some(f) => imbalance_weighted(&part_weights(g, &part, cfg.nparts), f),
    };
    if achieved > cfg.imbalance_tol * 1.10 {
        // Diffusion failed; a fresh partition is better than an unbalanced one.
        return partition_kway_impl(g, cfg, frac);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway::{partition_kway, quality};
    use crate::metrics::migration;

    fn grid(nx: usize, ny: usize) -> Graph<'static> {
        let id = |x: usize, y: usize| y * nx + x;
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x > 0 {
                    adjncy.push(id(x - 1, y) as u32);
                }
                if x + 1 < nx {
                    adjncy.push(id(x + 1, y) as u32);
                }
                if y > 0 {
                    adjncy.push(id(x, y - 1) as u32);
                }
                if y + 1 < ny {
                    adjncy.push(id(x, y + 1) as u32);
                }
                xadj.push(adjncy.len() as u32);
            }
        }
        Graph::from_csr(xadj, adjncy, vec![1; nx * ny])
    }

    #[test]
    fn unchanged_weights_mean_no_migration() {
        let g = grid(16, 16);
        let cfg = PartitionConfig::new(4);
        let prev = partition_kway(&g, &cfg);
        let next = repartition_kway(&g, &cfg, &prev);
        let (moved, _) = migration(&g, &prev, &next);
        assert_eq!(moved, 0, "balanced input must not move anything");
    }

    #[test]
    fn drifted_weights_rebalance_with_small_migration() {
        let mut g = grid(16, 16);
        let cfg = PartitionConfig::new(4);
        let prev = partition_kway(&g, &cfg);
        // Refinement happened in part 0's region: weights grow 4×.
        for v in 0..g.n() {
            if prev[v] == 0 {
                g.vwgt.to_mut()[v] = 4;
            }
        }
        let next = repartition_kway(&g, &cfg, &prev);
        let q = quality(&g, &next, 4);
        assert!(
            q.imbalance <= cfg.imbalance_tol * 1.10 + 0.02,
            "imbalance {}",
            q.imbalance
        );
        let (moved, _) = migration(&g, &prev, &next);
        // Fresh partitioning would relabel almost everything; diffusion
        // should keep the majority in place.
        assert!(
            moved < g.n() / 2,
            "diffusive repartition moved {moved}/{} vertices",
            g.n()
        );
    }

    #[test]
    fn weighted_repartition_drains_a_slow_part() {
        let g = grid(16, 16);
        let cfg = PartitionConfig::new(4);
        let prev = partition_kway(&g, &cfg);
        // Part 0's processor just slowed to half speed; the others are fine.
        let caps = [0.5, 1.0, 1.0, 1.0];
        let next = repartition_kway_weighted(&g, &cfg, &prev, &caps);
        let w = part_weights(&g, &next, 4);
        let eff = imbalance_weighted(&w, &caps);
        assert!(
            eff <= cfg.imbalance_tol * 1.10 + 0.02,
            "capacity-weighted imbalance {eff} (weights {w:?})"
        );
        // Part 0 should end up near its fair share of 1/7 of the load.
        let share = w[0] as f64 / g.total_vwgt() as f64;
        assert!(
            share < 0.22,
            "slow part still carries {share:.3} of the load"
        );
        // Diffusion, not wholesale relabeling.
        let (moved, _) = migration(&g, &prev, &next);
        assert!(
            moved < g.n() / 2,
            "weighted repartition moved {moved}/{} vertices",
            g.n()
        );
    }

    #[test]
    fn uniform_capacities_match_unweighted_repartition() {
        let mut g = grid(12, 12);
        let cfg = PartitionConfig::new(4);
        let prev = partition_kway(&g, &cfg);
        for v in 0..g.n() {
            if prev[v] == 1 {
                g.vwgt.to_mut()[v] = 3;
            }
        }
        let plain = repartition_kway(&g, &cfg, &prev);
        let weighted = repartition_kway_weighted(&g, &cfg, &prev, &[1.0; 4]);
        assert_eq!(plain, weighted);
    }

    #[test]
    fn dual_repartition_balances_both_and_keeps_most_in_place() {
        use crate::kway::partition_kway_dual;
        use crate::metrics::{imbalance_weighted, weights_of};
        let g = grid(16, 16);
        let cfg = PartitionConfig::new(4);
        let caps = vec![1.0; 4];
        // Particles drift into part 0's region after the initial balance.
        let w2_init = vec![1u64; g.n()];
        let prev = partition_kway_dual(&g, &w2_init, &cfg, &caps);
        let w2: Vec<u64> = (0..g.n())
            .map(|v| if prev[v] == 0 { 3 } else { 1 })
            .collect();
        let next = repartition_kway_dual(&g, &w2, &cfg, &prev, &caps);
        let i1 = imbalance_weighted(&part_weights(&g, &next, 4), &caps);
        let i2 = imbalance_weighted(&weights_of(&w2, &next, 4), &caps);
        assert!(i1 <= 1.25, "dual repartition w1 imbalance {i1}");
        assert!(i2 <= 1.25, "dual repartition w2 imbalance {i2}");
        let (moved, _) = migration(&g, &prev, &next);
        assert!(
            moved < g.n() / 2,
            "dual repartition moved {moved}/{} vertices",
            g.n()
        );
    }

    #[test]
    fn dual_repartition_reduces_to_weighted_when_uniform() {
        let mut g = grid(12, 12);
        let cfg = PartitionConfig::new(4);
        let prev = partition_kway(&g, &cfg);
        for v in 0..g.n() {
            if prev[v] == 2 {
                g.vwgt.to_mut()[v] = 5;
            }
        }
        let caps = [1.0, 2.0, 1.0, 1.0];
        let single = repartition_kway_weighted(&g, &cfg, &prev, &caps);
        let w2 = vec![3u64; g.n()];
        assert_eq!(repartition_kway_dual(&g, &w2, &cfg, &prev, &caps), single);
    }

    #[test]
    fn pathological_start_falls_back_to_fresh() {
        let g = grid(12, 12);
        let cfg = PartitionConfig::new(4);
        // Everything on one part: diffusion has a long way to go; result
        // must still be balanced (possibly via fallback).
        let prev = vec![0u32; g.n()];
        let next = repartition_kway(&g, &cfg, &prev);
        let q = quality(&g, &next, 4);
        assert!(
            q.imbalance <= cfg.imbalance_tol * 1.12,
            "imbalance {}",
            q.imbalance
        );
    }
}
