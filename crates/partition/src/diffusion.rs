//! Diffusive load balancing — the classical *local-view* baseline
//! (Cybenko [7], Horton [14]) that PLUM's global-view repartitioning is
//! positioned against.
//!
//! Each processor only talks to the processors it shares a boundary with:
//! every round, load flows across each processor-graph edge proportionally
//! to the load difference, and the flow is realized by moving boundary dual
//! vertices. No global information is used — which is exactly why such
//! schemes converge slowly and can leave long load-transport chains, the
//! weakness §1 attributes to methods that "lack a global view of loads
//! across processors".

use crate::graph::Graph;
use crate::metrics::part_weights;
use crate::rng::Rng;

/// Outcome of a diffusive balancing run.
#[derive(Debug, Clone)]
pub struct DiffusionResult {
    /// Final assignment.
    pub part: Vec<u32>,
    /// Rounds executed.
    pub rounds: usize,
    /// Dual vertices moved in total (the migration cost a remapper would
    /// pay, ignoring that diffusion also moves data *through* intermediate
    /// processors).
    pub total_moved: usize,
}

/// Configuration for [`diffuse`].
#[derive(Debug, Clone, Copy)]
pub struct DiffusionConfig {
    /// Maximum diffusion rounds.
    pub max_rounds: usize,
    /// Stop once `max/avg` imbalance drops below this.
    pub imbalance_tol: f64,
    /// Fraction of each pairwise load difference to transfer per round
    /// (Cybenko's diffusion parameter; stability requires ≤ 1/deg).
    pub alpha: f64,
    /// RNG seed for tie-breaking.
    pub seed: u64,
}

impl Default for DiffusionConfig {
    fn default() -> Self {
        DiffusionConfig {
            max_rounds: 200,
            imbalance_tol: 1.05,
            alpha: 0.25,
            seed: 7,
        }
    }
}

/// Processor adjacency: parts that share at least one cut edge.
fn processor_graph(g: &Graph, part: &[u32], nparts: usize) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); nparts];
    for v in 0..g.n() {
        for (u, _) in g.edges(v) {
            let (a, b) = (part[v] as usize, part[u as usize] as usize);
            if a != b && !adj[a].contains(&b) {
                adj[a].push(b);
            }
        }
    }
    adj
}

/// Run local diffusive load balancing starting from `part`.
pub fn diffuse(g: &Graph, part: &[u32], nparts: usize, cfg: &DiffusionConfig) -> DiffusionResult {
    let mut part = part.to_vec();
    let mut weights = part_weights(g, &part, nparts);
    let total: u64 = weights.iter().sum();
    let avg = total as f64 / nparts as f64;
    let mut rng = Rng::new(cfg.seed);
    let mut total_moved = 0usize;
    let mut rounds = 0usize;

    for _ in 0..cfg.max_rounds {
        let imb = *weights.iter().max().unwrap() as f64 / avg;
        if imb <= cfg.imbalance_tol {
            break;
        }
        rounds += 1;
        let padj = processor_graph(g, &part, nparts);

        // Desired flow per processor pair this round.
        let mut want: Vec<Vec<(usize, u64)>> = vec![Vec::new(); nparts];
        for p in 0..nparts {
            for &q in &padj[p] {
                if weights[p] > weights[q] {
                    let flow = ((weights[p] - weights[q]) as f64 * cfg.alpha) as u64;
                    if flow > 0 {
                        want[p].push((q, flow));
                    }
                }
            }
        }

        // Realize flows by moving boundary vertices (random order so no
        // direction is systematically favoured).
        let mut order: Vec<u32> = (0..g.n() as u32).collect();
        rng.shuffle(&mut order);
        let mut moved_this_round = 0usize;
        for &v in &order {
            let v = v as usize;
            let s = part[v] as usize;
            if want[s].is_empty() {
                continue;
            }
            // Is v on the boundary toward a part we owe load to?
            let mut target: Option<usize> = None;
            for (u, _) in g.edges(v) {
                let q = part[u as usize] as usize;
                if let Some(slot) = want[s].iter().position(|&(w, f)| w == q && f > 0) {
                    target = Some(slot);
                    break;
                }
            }
            if let Some(slot) = target {
                let (q, remaining) = want[s][slot];
                let vw = g.vwgt[v];
                part[v] = q as u32;
                weights[s] -= vw;
                weights[q] += vw;
                want[s][slot] = (q, remaining.saturating_sub(vw));
                moved_this_round += 1;
            }
        }
        total_moved += moved_this_round;
        if moved_this_round == 0 {
            break; // no boundary vertices available: diffusion is stuck
        }
    }

    DiffusionResult {
        part,
        rounds,
        total_moved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway::{partition_kway, quality, PartitionConfig};

    fn grid(nx: usize, ny: usize) -> Graph<'static> {
        let id = |x: usize, y: usize| y * nx + x;
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x > 0 {
                    adjncy.push(id(x - 1, y) as u32);
                }
                if x + 1 < nx {
                    adjncy.push(id(x + 1, y) as u32);
                }
                if y > 0 {
                    adjncy.push(id(x, y - 1) as u32);
                }
                if y + 1 < ny {
                    adjncy.push(id(x, y + 1) as u32);
                }
                xadj.push(adjncy.len() as u32);
            }
        }
        Graph::from_csr(xadj, adjncy, vec![1; nx * ny])
    }

    fn hotspot(g: &mut Graph, part: &[u32], factor: u64) {
        for v in 0..g.n() {
            if part[v] == 0 {
                g.vwgt.to_mut()[v] = factor;
            }
        }
    }

    #[test]
    fn diffusion_balances_a_hotspot() {
        let mut g = grid(16, 16);
        let prev = partition_kway(&g, &PartitionConfig::new(4));
        hotspot(&mut g, &prev, 6);
        let r = diffuse(&g, &prev, 4, &DiffusionConfig::default());
        let q = quality(&g, &r.part, 4);
        assert!(
            q.imbalance <= 1.10,
            "diffusion left imbalance {}",
            q.imbalance
        );
        assert!(r.rounds > 0);
        assert!(r.total_moved > 0);
    }

    #[test]
    fn diffusion_is_a_noop_when_balanced() {
        let g = grid(12, 12);
        let prev = partition_kway(&g, &PartitionConfig::new(4));
        // Tolerance at (or above) the current imbalance ⇒ nothing to do.
        let cfg = DiffusionConfig {
            imbalance_tol: quality(&g, &prev, 4).imbalance + 1e-9,
            ..DiffusionConfig::default()
        };
        let r = diffuse(&g, &prev, 4, &cfg);
        assert_eq!(r.rounds, 0);
        assert_eq!(r.total_moved, 0);
        assert_eq!(r.part, prev);
    }

    #[test]
    fn diffusion_needs_many_rounds_for_distant_transport() {
        // A long strip with the hotspot at one end: local diffusion must
        // transport load across every intermediate processor — the
        // structural weakness the global method avoids.
        let mut g = grid(64, 4);
        // 8 slab parts left to right.
        let part: Vec<u32> = (0..g.n()).map(|v| ((v % 64) / 8) as u32).collect();
        for v in 0..g.n() {
            if part[v] == 0 {
                g.vwgt.to_mut()[v] = 16;
            }
        }
        let cfg = DiffusionConfig {
            max_rounds: 500,
            ..DiffusionConfig::default()
        };
        let r = diffuse(&g, &part, 8, &cfg);
        let q = quality(&g, &r.part, 8);
        assert!(
            r.rounds >= 8,
            "distant transport should take many local rounds, got {}",
            r.rounds
        );
        assert!(q.imbalance < 1.4, "even slow diffusion must make progress");
    }
}
