//! Distributed multilevel k-way repartitioning inside the SPMD simulator.
//!
//! This is the "parallel MeTiS" of §4.2 run for real: every rank owns a
//! contiguous block of dual-graph rows, coarsening proceeds by rounds of
//! parallel heavy-edge matching with cross-rank match negotiation over the
//! simulator's typed channels, the coarsest graph is gathered to rank 0 and
//! partitioned with the serial kernels ([`crate::kway`], [`crate::repart`]),
//! and the result is refined in parallel during uncoarsening with
//! boundary-greedy moves under allreduce'd part weights. All control flow
//! branches on replicated data only, so the partition is a deterministic
//! function of `(graph, owner, prev, cfg, caps)` — independent of the
//! machine model, chaos perturbations, and link jitter. Virtual time, by
//! contrast, comes entirely from real message traffic plus per-vertex
//! compute charges, which is what the engine reports as the partition phase.
//!
//! Graphs at or below the configured coarsening target skip the multilevel
//! machinery: the rank-local weights (and previous parts) are gathered to
//! rank 0, which runs the serial kernel on the original vertex numbering and
//! broadcasts the answer — bit-identical to the host-side reference, which
//! is the determinism anchor of the differential test battery.

use std::borrow::Cow;
use std::collections::HashMap;

use plum_parsim::{makespan, spmd, words_for_bytes, Comm, MachineModel, TraceLog};

use crate::graph::Graph;
use crate::kway::{
    capacity_fractions, part_ceilings, partition_kway_dual, partition_kway_impl, rel_lt,
    PartitionConfig,
};
use crate::metrics::dual_uniform;
use crate::repart::{repartition_diffuse, repartition_kway_dual, repartition_kway_impl};
use crate::rng::Rng;

/// Sparse alltoallv send list: `(destination, words, (u32, u32) payload)`.
type PairItems = Vec<(usize, u64, Vec<(u32, u32)>)>;

/// Multiplier on `vertex_units` for the serial solve of the coarsest graph
/// on rank 0 (one multilevel pass over a few hundred vertices).
const HOST_UNITS_PER_VERTEX: f64 = 8.0;

/// Per-stage, per-rank RNG: deterministic in `(seed, level, stage, rank)` and
/// uncorrelated across all four (splitmix-style multiplier mixing).
fn stage_rng(seed: u64, level: usize, stage: u64, rank: usize) -> Rng {
    Rng::new(
        seed ^ (level as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (stage + 1).wrapping_mul(0xBF58_476D_1CE4_E5B9)
            ^ (rank as u64 + 1).wrapping_mul(0x94D0_49BB_1331_11EB),
    )
}

/// Charge `vertices` stage-visits of local partitioning work.
fn charge(comm: &mut Comm, vertices: usize, vertex_units: f64) {
    let units = vertex_units * vertices as f64;
    if units > 0.0 {
        comm.compute(units);
    }
}

// ---------------------------------------------------------------------------
// Distributed graph representation
// ---------------------------------------------------------------------------

/// One level of the distributed graph: rank `r` owns the contiguous global
/// ids `off[r]..off[r+1]` and stores their CSR rows with *global* neighbour
/// ids. Replicating only the `P+1`-entry `off` array is enough to route any
/// vertex to its owner.
#[derive(Debug, Clone)]
pub(crate) struct DistGraph {
    /// Ownership offsets, `P + 1` entries, replicated on every rank.
    pub(crate) off: Vec<u32>,
    /// Local row offsets (`local_n + 1` entries).
    pub(crate) xadj: Vec<u32>,
    /// Neighbour ids (global numbering).
    pub(crate) adjncy: Vec<u32>,
    /// Edge weights, parallel to `adjncy`.
    pub(crate) adjwgt: Vec<u32>,
    /// Vertex weights of the owned block.
    pub(crate) vwgt: Vec<u64>,
    /// Seed part of each owned vertex (empty when partitioning fresh).
    pub(crate) seed: Vec<u32>,
}

impl DistGraph {
    pub(crate) fn local_n(&self) -> usize {
        self.vwgt.len()
    }

    pub(crate) fn global_n(&self) -> usize {
        *self.off.last().unwrap() as usize
    }

    /// Owner rank of a global id (`off` is non-decreasing; empty ranks are
    /// skipped by taking the last rank whose offset is ≤ `gid`).
    pub(crate) fn owner_of(&self, gid: u32) -> usize {
        self.off[1..].partition_point(|&o| o <= gid)
    }

    /// Neighbours of local vertex `i` as `(global id, edge weight)`.
    pub(crate) fn row(&self, i: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.xadj[i] as usize;
        let hi = self.xadj[i + 1] as usize;
        self.adjncy[lo..hi]
            .iter()
            .copied()
            .zip(self.adjwgt[lo..hi].iter().copied())
    }
}

/// Per-level data linking a coarse graph back to its finer parent, kept for
/// the projection step of uncoarsening.
#[derive(Debug, Clone)]
pub(crate) struct LevelLink {
    /// Fine local index → local coarse index, or `u32::MAX` when the coarse
    /// vertex lives on the partner's rank (non-representative side of a
    /// cross-rank pair).
    cmap_local: Vec<u32>,
    /// Per destination rank: local coarse indices whose part is shipped
    /// during projection (representative side of cross-rank pairs), ordered
    /// by partner gid.
    proj_out: Vec<Vec<u32>>,
    /// Per source rank: local fine indices receiving those parts, in the
    /// matching order.
    proj_in: Vec<Vec<u32>>,
}

/// Build the level-0 distributed graph. The rank-major renumbering is
/// derived from the replicated `owner` array (stable within each rank), so
/// every rank computes the same numbering without communication.
pub(crate) fn build_level0(
    rank: usize,
    nranks: usize,
    g: &Graph,
    owner: &[u32],
    prev: Option<&[u32]>,
) -> DistGraph {
    let n = g.n();
    assert_eq!(owner.len(), n, "need one owner per vertex");
    let mut off = vec![0u32; nranks + 1];
    for &o in owner {
        off[o as usize + 1] += 1;
    }
    for r in 0..nranks {
        off[r + 1] += off[r];
    }
    let mut next = off.clone();
    let mut newid = vec![0u32; n];
    for v in 0..n {
        let r = owner[v] as usize;
        newid[v] = next[r];
        next[r] += 1;
    }
    let mut xadj = vec![0u32];
    let mut adjncy = Vec::new();
    let mut adjwgt = Vec::new();
    let mut vwgt = Vec::new();
    let mut seed = Vec::new();
    for v in 0..n {
        if owner[v] as usize != rank {
            continue;
        }
        for (u, w) in g.edges(v) {
            adjncy.push(newid[u as usize]);
            adjwgt.push(w);
        }
        xadj.push(adjncy.len() as u32);
        vwgt.push(g.vwgt[v]);
        if let Some(p) = prev {
            seed.push(p[v]);
        }
    }
    DistGraph {
        off,
        xadj,
        adjncy,
        adjwgt,
        vwgt,
        seed,
    }
}

// ---------------------------------------------------------------------------
// Parallel heavy-edge matching with cross-rank negotiation
// ---------------------------------------------------------------------------

const FREE: u8 = 0;
const MATCHED: u8 = 1;
const PENDING: u8 = 2;

/// One round of parallel heavy-edge matching. Local pairs match immediately;
/// a proposal to a remote vertex is negotiated in two `alltoallv` rounds
/// (proposals out, grants back). The grant rule is deterministic — heaviest
/// edge first, ties to the lower proposer id — and a pending vertex accepts
/// only its own target (mutual proposals), so the global mate relation is
/// involutive by construction. Returns the partner gid of every owned vertex
/// (its own gid when it stays a singleton).
pub(crate) fn parallel_hem(comm: &mut Comm, dg: &DistGraph, seed: u64, level: usize) -> Vec<u32> {
    let p = comm.nranks();
    let rank = comm.rank();
    let base = dg.off[rank];
    let nloc = dg.local_n();

    let mut partner: Vec<u32> = (0..nloc as u32).map(|i| base + i).collect();
    let mut state = vec![FREE; nloc];
    let mut my_prop = vec![u32::MAX; nloc];

    let mut order: Vec<u32> = (0..nloc as u32).collect();
    stage_rng(seed, level, 0, rank).shuffle(&mut order);

    // Local pass: match local pairs, queue proposals for remote best mates.
    let mut props: Vec<Vec<(u32, u32, u32)>> = vec![Vec::new(); p]; // (target, from, w)
    for &iv in &order {
        let i = iv as usize;
        if state[i] != FREE {
            continue;
        }
        let gid = base + i as u32;
        let mut best: Option<(u32, u32)> = None; // (weight, neighbour gid)
        for (u, w) in dg.row(i) {
            let local = u >= base && u < base + nloc as u32;
            if local && state[(u - base) as usize] != FREE {
                continue;
            }
            if best.is_none_or(|(bw, _)| w > bw) {
                best = Some((w, u));
            }
        }
        match best {
            None => {}
            Some((w, u)) => {
                if u >= base && u < base + nloc as u32 {
                    let j = (u - base) as usize;
                    partner[i] = u;
                    partner[j] = gid;
                    state[i] = MATCHED;
                    state[j] = MATCHED;
                } else {
                    state[i] = PENDING;
                    my_prop[i] = u;
                    props[dg.owner_of(u)].push((u, gid, w));
                }
            }
        }
    }

    // Negotiate: proposals out, grants computed at the target's owner.
    #[allow(clippy::type_complexity)]
    let items: Vec<(usize, u64, Vec<(u32, u32, u32)>)> = props
        .into_iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(dst, v)| (dst, words_for_bytes(12 * v.len()), v))
        .collect();
    let incoming = comm.alltoallv_sparse(items);
    let mut all: Vec<(u32, u32, u32)> = incoming.into_iter().flat_map(|(_, v)| v).collect();
    all.sort_unstable_by_key(|&(t, f, w)| (t, std::cmp::Reverse(w), f));
    let mut resp: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p]; // (from, accepted)
    for (t, f, _w) in all {
        let i = (t - base) as usize;
        let accept = match state[i] {
            FREE => true,
            PENDING => my_prop[i] == f, // mutual proposal: both sides accept
            _ => false,
        };
        if accept {
            partner[i] = f;
            state[i] = MATCHED;
        }
        resp[dg.owner_of(f)].push((f, accept as u32));
    }
    let items: PairItems = resp
        .into_iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(dst, v)| (dst, words_for_bytes(8 * v.len()), v))
        .collect();
    for (_src, list) in comm.alltoallv_sparse(items) {
        for (f, accepted) in list {
            let i = (f - base) as usize;
            if accepted == 1 {
                partner[i] = my_prop[i];
                state[i] = MATCHED;
            } else if state[i] == PENDING {
                state[i] = FREE; // singleton this level
            }
        }
    }
    partner
}

// ---------------------------------------------------------------------------
// Distributed contraction
// ---------------------------------------------------------------------------

/// Contract a matching into the next-coarser distributed graph. The smaller
/// gid of each pair is the representative; its owner hosts the coarse
/// vertex. Three negotiation rounds: coarse ids to cross-rank partners,
/// ghost coarse-map entries to neighbouring ranks, and relabelled rows of
/// cross-rank non-representatives to the representative's owner. Returns
/// `None` when matching stalled (< 5% global reduction), mirroring the
/// serial stall guard; the decision replicates on every rank because it is
/// made from the allgathered coarse counts.
pub(crate) fn contract_distributed(
    comm: &mut Comm,
    dg: &DistGraph,
    partner: &[u32],
) -> Option<(DistGraph, LevelLink)> {
    let p = comm.nranks();
    let rank = comm.rank();
    let base = dg.off[rank];
    let nloc = dg.local_n();

    // Representatives, in increasing fine gid order.
    let mut cmap_local = vec![u32::MAX; nloc];
    let mut reps: Vec<u32> = Vec::new();
    for i in 0..nloc {
        let gid = base + i as u32;
        if partner[i] == gid || gid < partner[i] {
            cmap_local[i] = reps.len() as u32;
            reps.push(i as u32);
        }
    }
    for &ri in &reps {
        let i = ri as usize;
        let m = partner[i];
        if m != base + i as u32 && m >= base && m < base + nloc as u32 {
            cmap_local[(m - base) as usize] = cmap_local[i];
        }
    }

    // Global coarse numbering: contiguous per rank.
    let counts = comm.allgather(1, reps.len() as u64);
    let mut coff = vec![0u32; p + 1];
    for r in 0..p {
        coff[r + 1] = coff[r] + counts[r] as u32;
    }
    if coff[p] as f64 > dg.global_n() as f64 * 0.95 {
        return None; // matching stalled; keep the current level as coarsest
    }
    let cbase = coff[rank];

    // Round A: representatives tell cross-rank partners their coarse gid.
    let mut a_out: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p]; // (partner gid, coarse gid)
    for (c, &ri) in reps.iter().enumerate() {
        let i = ri as usize;
        let m = partner[i];
        if m != base + i as u32 && !(m >= base && m < base + nloc as u32) {
            a_out[dg.owner_of(m)].push((m, cbase + c as u32));
        }
    }
    for bucket in &mut a_out {
        bucket.sort_unstable(); // sender order == receiver's own gid order
    }
    let proj_out: Vec<Vec<u32>> = a_out
        .iter()
        .map(|b| b.iter().map(|&(_, cg)| cg - cbase).collect())
        .collect();
    let items: PairItems = a_out
        .into_iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(dst, v)| (dst, words_for_bytes(8 * v.len()), v))
        .collect();
    let a_in = comm.alltoallv_sparse(items);

    // Global coarse gid of every owned fine vertex.
    let mut coarse_of = vec![u32::MAX; nloc];
    for i in 0..nloc {
        if cmap_local[i] != u32::MAX {
            coarse_of[i] = cbase + cmap_local[i];
        }
    }
    let mut proj_in: Vec<Vec<u32>> = vec![Vec::new(); p];
    for (s, list) in &a_in {
        for &(gid, cg) in list {
            let i = (gid - base) as usize;
            coarse_of[i] = cg;
            proj_in[*s].push(i as u32);
        }
    }

    // Round B: ghost coarse-map exchange — each rank sends (fine gid, coarse
    // gid) of its owned vertices bordering rank d, to d.
    let mut b_out: Vec<Vec<(u32, u32)>> = vec![Vec::new(); p];
    let mut mark = vec![u32::MAX; p];
    for i in 0..nloc {
        for (u, _) in dg.row(i) {
            if u >= base && u < base + nloc as u32 {
                continue;
            }
            let o = dg.owner_of(u);
            if mark[o] != i as u32 {
                mark[o] = i as u32;
                b_out[o].push((base + i as u32, coarse_of[i]));
            }
        }
    }
    let items: PairItems = b_out
        .into_iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(dst, v)| (dst, words_for_bytes(8 * v.len()), v))
        .collect();
    let b_in = comm.alltoallv_sparse(items);
    let mut ghost: HashMap<u32, u32> = HashMap::new();
    for (_src, list) in &b_in {
        for &(gid, cg) in list {
            ghost.insert(gid, cg);
        }
    }
    let coarse_gid_of = |u: u32, coarse_of: &[u32]| -> u32 {
        if u >= base && u < base + nloc as u32 {
            coarse_of[(u - base) as usize]
        } else {
            ghost[&u]
        }
    };

    // Round C: cross-rank non-representatives ship their relabelled rows
    // (plus vertex weight) to the representative's owner.
    type RowMsg = (u32, u64, Vec<(u32, u32)>); // (coarse gid, vwgt, entries)
    let mut c_out: Vec<Vec<RowMsg>> = vec![Vec::new(); p];
    let mut c_bytes = vec![0usize; p];
    for i in 0..nloc {
        if cmap_local[i] != u32::MAX {
            continue; // representative or locally paired
        }
        let cg = coarse_of[i];
        let dest = coff[1..].partition_point(|&o| o <= cg);
        let mut row: Vec<(u32, u32)> = Vec::new();
        for (u, w) in dg.row(i) {
            let cu = coarse_gid_of(u, &coarse_of);
            if cu != cg {
                row.push((cu, w));
            }
        }
        c_bytes[dest] += 12 + 8 * row.len();
        c_out[dest].push((cg, dg.vwgt[i], row));
    }
    let items: Vec<(usize, u64, Vec<RowMsg>)> = c_out
        .into_iter()
        .zip(&c_bytes)
        .enumerate()
        .filter(|(_, (v, _))| !v.is_empty())
        .map(|(dst, (v, &b))| (dst, words_for_bytes(b), v))
        .collect();
    let c_in = comm.alltoallv_sparse(items);
    let ncoarse = reps.len();
    let mut shipped: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ncoarse];
    let mut shipped_w = vec![0u64; ncoarse];
    for (_src, list) in c_in {
        for (cg, vw, row) in list {
            let c = (cg - cbase) as usize;
            shipped_w[c] += vw;
            shipped[c].extend(row);
        }
    }

    // Assemble the coarse CSR: representative row + partner row (local or
    // shipped), relabelled, sorted, duplicate entries merged.
    let mut cxadj = vec![0u32];
    let mut cadjncy = Vec::new();
    let mut cadjwgt = Vec::new();
    let mut cvwgt = Vec::with_capacity(ncoarse);
    let mut cseed = Vec::new();
    let mut buf: Vec<(u32, u32)> = Vec::new();
    for (c, &ri) in reps.iter().enumerate() {
        let i = ri as usize;
        let cg = cbase + c as u32;
        buf.clear();
        for (u, w) in dg.row(i) {
            let cu = coarse_gid_of(u, &coarse_of);
            if cu != cg {
                buf.push((cu, w));
            }
        }
        let mut vw = dg.vwgt[i];
        let m = partner[i];
        if m != base + i as u32 {
            if m >= base && m < base + nloc as u32 {
                let j = (m - base) as usize;
                for (u, w) in dg.row(j) {
                    let cu = coarse_gid_of(u, &coarse_of);
                    if cu != cg {
                        buf.push((cu, w));
                    }
                }
                vw += dg.vwgt[j];
            } else {
                buf.extend(shipped[c].iter().copied());
                vw += shipped_w[c];
            }
        }
        buf.sort_unstable_by_key(|e| e.0);
        let mut k = 0;
        while k < buf.len() {
            let (u, mut w) = buf[k];
            k += 1;
            while k < buf.len() && buf[k].0 == u {
                w += buf[k].1;
                k += 1;
            }
            cadjncy.push(u);
            cadjwgt.push(w);
        }
        cxadj.push(cadjncy.len() as u32);
        cvwgt.push(vw);
        if !dg.seed.is_empty() {
            cseed.push(dg.seed[i]);
        }
    }

    let coarse = DistGraph {
        off: coff,
        xadj: cxadj,
        adjncy: cadjncy,
        adjwgt: cadjwgt,
        vwgt: cvwgt,
        seed: cseed,
    };
    let link = LevelLink {
        cmap_local,
        proj_out,
        proj_in,
    };
    Some((coarse, link))
}

// ---------------------------------------------------------------------------
// Coarsest solve, projection, distributed refinement
// ---------------------------------------------------------------------------

/// Gather the coarsest graph's CSR rows to rank 0 (rows concatenate in rank
/// order because global ids are contiguous per rank), solve serially there,
/// and broadcast the partition. Returns the owned slice of the result.
fn coarsest_solve(
    comm: &mut Comm,
    dg: &DistGraph,
    cfg: &PartitionConfig,
    frac: Option<&[f64]>,
    vertex_units: f64,
) -> Vec<u32> {
    let rank = comm.rank();
    let bytes = 4 * (dg.xadj.len() + 2 * dg.adjncy.len() + dg.seed.len()) + 8 * dg.vwgt.len();
    let piece = (
        dg.xadj.clone(),
        dg.adjncy.clone(),
        dg.adjwgt.clone(),
        dg.vwgt.clone(),
        dg.seed.clone(),
    );
    let pieces = comm.gatherv(0, words_for_bytes(bytes), piece);
    let full = if rank == 0 {
        let pieces = pieces.unwrap();
        let mut xadj = vec![0u32];
        let mut adjncy = Vec::new();
        let mut adjwgt = Vec::new();
        let mut vwgt = Vec::new();
        let mut seed = Vec::new();
        for (px, pa, pw, pv, ps) in pieces {
            let shift = *xadj.last().unwrap();
            xadj.extend(px[1..].iter().map(|&x| x + shift));
            adjncy.extend(pa);
            adjwgt.extend(pw);
            vwgt.extend(pv);
            seed.extend(ps);
        }
        let g = Graph {
            xadj: Cow::Owned(xadj),
            adjncy: Cow::Owned(adjncy),
            adjwgt: Cow::Owned(adjwgt),
            vwgt: Cow::Owned(vwgt),
        };
        charge(comm, HOST_UNITS_PER_VERTEX as usize * g.n(), vertex_units);
        // Seeded: diffuse only, never fall back to a fresh partition — the
        // coarse graph's granularity caps what any partitioner can achieve
        // here, a fresh relabeling would destroy the seed alignment (low
        // migration §4.2; part↔processor sizing under capacities), and the
        // balance stages of [`refine_distributed`] repair the residual
        // imbalance as uncoarsening restores granularity.
        let part = if seed.is_empty() {
            partition_kway_impl(&g, cfg, frac)
        } else {
            repartition_diffuse(&g, cfg, &seed, frac)
        };
        Some(part)
    } else {
        None
    };
    let full = comm.bcast(0, words_for_bytes(4 * dg.global_n()), full);
    full[dg.off[rank] as usize..dg.off[rank + 1] as usize].to_vec()
}

/// Project a coarse partition onto the finer level: owned coarse vertices
/// project locally; cross-rank pairs receive their part from the
/// representative's owner over one `alltoallv`.
fn project_parts(
    comm: &mut Comm,
    link: &LevelLink,
    coarse_part: &[u32],
    fine_nloc: usize,
) -> Vec<u32> {
    let items: Vec<(usize, u64, Vec<u32>)> = link
        .proj_out
        .iter()
        .enumerate()
        .filter(|(_, list)| !list.is_empty())
        .map(|(dst, list)| {
            let vals: Vec<u32> = list.iter().map(|&c| coarse_part[c as usize]).collect();
            (dst, words_for_bytes(4 * vals.len()), vals)
        })
        .collect();
    let incoming = comm.alltoallv_sparse(items);
    let mut part = vec![0u32; fine_nloc];
    for (i, &c) in link.cmap_local.iter().enumerate() {
        if c != u32::MAX {
            part[i] = coarse_part[c as usize];
        }
    }
    for (s, vals) in &incoming {
        for (k, &pv) in vals.iter().enumerate() {
            part[link.proj_in[*s][k] as usize] = pv;
        }
    }
    part
}

/// Upper bound on balance stages per level, matching the spirit of the
/// serial `kway_balance` sweep cap.
const MAX_BALANCE_STAGES: usize = 32;

/// Distributed refinement of one level, in stages. Each stage: exchange
/// ghost parts with neighbouring ranks, allreduce the global part weights,
/// propose moves locally, then commit them under a per-rank inflow quota
/// that every rank computes identically from an allgather of the per-part
/// demand — so the ceilings can never be exceeded even though ranks move
/// vertices concurrently.
///
/// When some part is over its ceiling (the coarsest solve can be forced
/// over by vertex granularity, and the overshoot survives projection
/// unchanged), the stage drains overweight parts toward relatively lighter
/// ones — the distributed analogue of the serial `kway_balance` — and only
/// then do the positive-gain stages run. The mode is decided from the
/// allreduced weights, so every rank agrees on it. Stops early when a gain
/// stage commits no move anywhere.
#[allow(clippy::too_many_arguments)]
fn refine_distributed(
    comm: &mut Comm,
    dg: &DistGraph,
    part: &mut [u32],
    max_w: &[u64],
    seed: u64,
    level: usize,
    passes: usize,
    vertex_units: f64,
) {
    let p = comm.nranks();
    let rank = comm.rank();
    let base = dg.off[rank];
    let nloc = dg.local_n();
    let nparts = max_w.len();

    // Boundary send lists: owned vertices adjacent to each other rank.
    let mut nbr_out: Vec<Vec<u32>> = vec![Vec::new(); p];
    let mut mark = vec![u32::MAX; p];
    for i in 0..nloc {
        for (u, _) in dg.row(i) {
            if u >= base && u < base + nloc as u32 {
                continue;
            }
            let o = dg.owner_of(u);
            if mark[o] != i as u32 {
                mark[o] = i as u32;
                nbr_out[o].push(i as u32);
            }
        }
    }

    let gain_stages = passes.max(1);
    let mut gain_done = 0usize;
    let mut balance_dead = false;
    for stage in 0..gain_stages + MAX_BALANCE_STAGES {
        if gain_done >= gain_stages {
            break;
        }
        charge(comm, nloc, vertex_units);

        // Ghost part exchange.
        let items: PairItems = nbr_out
            .iter()
            .enumerate()
            .filter(|(_, list)| !list.is_empty())
            .map(|(dst, list)| {
                let vals: Vec<(u32, u32)> =
                    list.iter().map(|&i| (base + i, part[i as usize])).collect();
                (dst, words_for_bytes(8 * vals.len()), vals)
            })
            .collect();
        let mut ghost: HashMap<u32, u32> = HashMap::new();
        for (_src, list) in comm.alltoallv_sparse(items) {
            for (gid, pv) in list {
                ghost.insert(gid, pv);
            }
        }
        let part_of = |u: u32, part: &[u32]| -> u32 {
            if u >= base && u < base + nloc as u32 {
                part[(u - base) as usize]
            } else {
                ghost[&u]
            }
        };

        // Global part weights.
        let mut local_w = vec![0u64; nparts];
        for i in 0..nloc {
            local_w[part[i] as usize] += dg.vwgt[i];
        }
        let w = comm.allreduce(nparts as u64, local_w, |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        });

        let balance_mode = !balance_dead && (0..nparts).any(|q| w[q] > max_w[q]);
        if !balance_mode {
            gain_done += 1;
        }

        // Propose moves against tentative weights.
        let mut order: Vec<u32> = (0..nloc as u32).collect();
        stage_rng(seed, level, 16 + stage as u64, rank).shuffle(&mut order);
        let mut wt = w.clone();
        let mut conn = vec![0i64; nparts];
        let mut touched: Vec<u32> = Vec::new();
        let mut proposals: Vec<(u32, u32)> = Vec::new(); // (local idx, to)
        let mut desired = vec![0u64; nparts];
        if balance_mode {
            // Drain overweight parts: best relatively-lighter neighbouring
            // part by connectivity, falling back to the relatively lightest
            // part overall so interior vertices cannot deadlock the drain.
            for &iv in &order {
                let i = iv as usize;
                let cur = part[i] as usize;
                if wt[cur] <= max_w[cur] {
                    continue;
                }
                let vw = dg.vwgt[i];
                let mut best: Option<(i64, usize)> = None;
                for (u, ew) in dg.row(i) {
                    let q = part_of(u, part) as usize;
                    if q != cur
                        && wt[q] + vw <= max_w[q]
                        && rel_lt(wt[q] + vw, max_w[q], wt[cur], max_w[cur])
                    {
                        let gain = ew as i64;
                        if best.is_none_or(|(bg, _)| gain > bg) {
                            best = Some((gain, q));
                        }
                    }
                }
                let to = match best {
                    Some((_, q)) => q,
                    None => {
                        let mut lightest = 0;
                        for q in 1..nparts {
                            if rel_lt(wt[q], max_w[q], wt[lightest], max_w[lightest]) {
                                lightest = q;
                            }
                        }
                        if lightest == cur
                            || wt[lightest] + vw > max_w[lightest]
                            || !rel_lt(wt[lightest] + vw, max_w[lightest], wt[cur], max_w[cur])
                        {
                            continue;
                        }
                        lightest
                    }
                };
                wt[cur] -= vw;
                wt[to] += vw;
                desired[to] += vw;
                proposals.push((i as u32, to as u32));
            }
        } else {
            // Positive-gain boundary moves.
            for &iv in &order {
                let i = iv as usize;
                let cur = part[i] as usize;
                touched.clear();
                let mut boundary = false;
                for (u, ew) in dg.row(i) {
                    let q = part_of(u, part) as usize;
                    if conn[q] == 0 {
                        touched.push(q as u32);
                    }
                    conn[q] += ew as i64;
                    if q != cur {
                        boundary = true;
                    }
                }
                if boundary {
                    let cur_conn = conn[cur];
                    let vw = dg.vwgt[i];
                    let mut best: Option<(i64, usize)> = None;
                    for &q in &touched {
                        let q = q as usize;
                        if q == cur {
                            continue;
                        }
                        let gain = conn[q] - cur_conn;
                        if gain > 0
                            && wt[q] + vw <= max_w[q]
                            && best.is_none_or(|(bg, _)| gain > bg)
                        {
                            best = Some((gain, q));
                        }
                    }
                    if let Some((_, q)) = best {
                        wt[cur] -= vw;
                        wt[q] += vw;
                        desired[q] += vw;
                        proposals.push((i as u32, q as u32));
                    }
                }
                for &q in &touched {
                    conn[q as usize] = 0;
                }
            }
        }

        // Inflow quota: every rank computes the identical greedy allocation
        // of each part's headroom across ranks (in rank order), from the
        // allgathered demand. Outflow is ignored, so the allocation is
        // conservative and the ceilings hold unconditionally.
        let all_desired = comm.allgather(nparts as u64, desired);
        let mut quota = vec![0u64; nparts];
        for q in 0..nparts {
            let mut avail = max_w[q].saturating_sub(w[q]);
            for (r, d) in all_desired.iter().enumerate() {
                let grant = d[q].min(avail);
                avail -= grant;
                if r == rank {
                    quota[q] = grant;
                    break;
                }
            }
        }

        // Commit in proposal order while quota lasts.
        let mut moves = 0u64;
        for &(iv, to) in &proposals {
            let i = iv as usize;
            let vw = dg.vwgt[i];
            if quota[to as usize] >= vw {
                quota[to as usize] -= vw;
                part[i] = to;
                moves += 1;
            }
        }
        if comm.allreduce_sum_u64(moves) == 0 {
            if balance_mode {
                // The drain is stuck (no vertex fits anywhere better);
                // switch to gain stages rather than spinning.
                balance_dead = true;
            } else {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Exact-serial small-graph path
// ---------------------------------------------------------------------------

/// Graphs at or below the coarsening target: gather the owned weights (and
/// previous parts) to rank 0, run the serial kernel on the original vertex
/// numbering, broadcast. Bit-identical to the host-side serial reference.
fn exact_serial(
    comm: &mut Comm,
    g: &Graph,
    owner: &[u32],
    prev: Option<&[u32]>,
    cfg: &PartitionConfig,
    frac: Option<&[f64]>,
    vertex_units: f64,
) -> Vec<u32> {
    let rank = comm.rank();
    let p = comm.nranks();
    let n = g.n();
    let mut vw: Vec<u64> = Vec::new();
    let mut pv: Vec<u32> = Vec::new();
    for v in 0..n {
        if owner[v] as usize == rank {
            vw.push(g.vwgt[v]);
            if let Some(pp) = prev {
                pv.push(pp[v]);
            }
        }
    }
    charge(comm, vw.len(), vertex_units);
    let bytes = 8 * vw.len() + 4 * pv.len();
    let pieces = comm.gatherv(0, words_for_bytes(bytes), (vw, pv));
    let full = if rank == 0 {
        let pieces = pieces.unwrap();
        let mut vwgt = vec![0u64; n];
        let mut prev_full = prev.map(|_| vec![0u32; n]);
        let mut idx = vec![0usize; p];
        for v in 0..n {
            let r = owner[v] as usize;
            vwgt[v] = pieces[r].0[idx[r]];
            if let Some(pf) = &mut prev_full {
                pf[v] = pieces[r].1[idx[r]];
            }
            idx[r] += 1;
        }
        debug_assert_eq!(&vwgt[..], &g.vwgt[..], "gathered weights must round-trip");
        let mut host = g.clone();
        host.vwgt = Cow::Owned(vwgt);
        charge(comm, HOST_UNITS_PER_VERTEX as usize * n, vertex_units);
        Some(match prev_full {
            Some(pf) => repartition_kway_impl(&host, cfg, &pf, frac),
            None => partition_kway_impl(&host, cfg, frac),
        })
    } else {
        None
    };
    comm.bcast(0, words_for_bytes(4 * n), full)
}

/// Dual-constraint SPMD body: gather the owned `(w1, w2, prev)` rows to
/// rank 0, run the serial dual multilevel kernel there on the original
/// numbering, and broadcast — the exact-serial pattern applied to the whole
/// dual path. The dual graph the engine balances is the root-element graph,
/// which is at the scale the exact-serial path already serves; the gather
/// and broadcast cost real collective traffic either way. A uniform second
/// weight vector delegates to [`repartition_body`], keeping the
/// single-constraint traffic (and virtual times) untouched.
#[allow(clippy::too_many_arguments)]
pub fn repartition_body_dual(
    comm: &mut Comm,
    g: &Graph,
    w2: &[u64],
    owner: &[u32],
    prev: Option<&[u32]>,
    cfg: &PartitionConfig,
    caps: &[f64],
    vertex_units: f64,
) -> Vec<u32> {
    let n = g.n();
    assert_eq!(w2.len(), n, "one second weight per vertex");
    if cfg.nparts == 1 {
        return vec![0; n];
    }
    if dual_uniform(w2) {
        return repartition_body(comm, g, owner, prev, cfg, caps, vertex_units);
    }
    let rank = comm.rank();
    let p = comm.nranks();
    let mut vw: Vec<u64> = Vec::new();
    let mut v2: Vec<u64> = Vec::new();
    let mut pv: Vec<u32> = Vec::new();
    for v in 0..n {
        if owner[v] as usize == rank {
            vw.push(g.vwgt[v]);
            v2.push(w2[v]);
            if let Some(pp) = prev {
                pv.push(pp[v]);
            }
        }
    }
    charge(comm, vw.len(), vertex_units);
    let bytes = 16 * vw.len() + 4 * pv.len();
    let pieces = comm.gatherv(0, words_for_bytes(bytes), (vw, v2, pv));
    let full = if rank == 0 {
        let pieces = pieces.unwrap();
        let mut vwgt = vec![0u64; n];
        let mut w2_full = vec![0u64; n];
        let mut prev_full = prev.map(|_| vec![0u32; n]);
        let mut idx = vec![0usize; p];
        for v in 0..n {
            let r = owner[v] as usize;
            vwgt[v] = pieces[r].0[idx[r]];
            w2_full[v] = pieces[r].1[idx[r]];
            if let Some(pf) = &mut prev_full {
                pf[v] = pieces[r].2[idx[r]];
            }
            idx[r] += 1;
        }
        debug_assert_eq!(&vwgt[..], &g.vwgt[..], "gathered weights must round-trip");
        debug_assert_eq!(&w2_full[..], w2, "gathered second weights must round-trip");
        let mut host = g.clone();
        host.vwgt = Cow::Owned(vwgt);
        charge(comm, HOST_UNITS_PER_VERTEX as usize * n, vertex_units);
        Some(match prev_full {
            Some(pf) => repartition_kway_dual(&host, &w2_full, cfg, &pf, caps),
            None => partition_kway_dual(&host, &w2_full, cfg, caps),
        })
    } else {
        None
    };
    comm.bcast(0, words_for_bytes(4 * n), full)
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// The SPMD body of the distributed repartitioner: call from every rank of a
/// session (or [`spmd`] run) at the same program point.
///
/// * `g` — the full dual graph (a replicated substrate; each rank reads only
///   its owned rows plus the replicated `owner`/offset arrays for routing).
/// * `owner` — owning rank of each vertex (the previous processor
///   assignment); defines the distribution of rows across ranks.
/// * `prev` — previous partition to diffuse from (`None` partitions fresh,
///   e.g. when `nparts` differs from the number of ranks).
/// * `caps` — one relative capacity per part; uniform capacities take the
///   bit-exact unweighted path.
/// * `vertex_units` — compute units charged per owned vertex per stage
///   (matching, contraction, each refinement round); pass 0 for free
///   compute.
///
/// Every rank returns the identical full partition vector. The result is
/// deterministic in the inputs — independent of the machine model and of
/// any chaos perturbation, which only stretch the virtual clocks.
pub fn repartition_body(
    comm: &mut Comm,
    g: &Graph,
    owner: &[u32],
    prev: Option<&[u32]>,
    cfg: &PartitionConfig,
    caps: &[f64],
    vertex_units: f64,
) -> Vec<u32> {
    let n = g.n();
    if cfg.nparts == 1 {
        return vec![0; n];
    }
    let frac = capacity_fractions(caps, cfg.nparts);
    let frac = frac.as_deref();
    if n <= cfg.coarsen_target() {
        return exact_serial(comm, g, owner, prev, cfg, frac, vertex_units);
    }

    let rank = comm.rank();
    let p = comm.nranks();
    let mut cur = build_level0(rank, p, g, owner, prev);
    charge(comm, cur.local_n(), vertex_units);

    // Coarsening: parallel HEM + negotiated contraction per level.
    let mut levels: Vec<(DistGraph, LevelLink)> = Vec::new();
    while cur.global_n() > cfg.coarsen_target() {
        let level = levels.len();
        charge(comm, cur.local_n(), vertex_units);
        let partner = parallel_hem(comm, &cur, cfg.seed, level);
        charge(comm, cur.local_n(), vertex_units);
        match contract_distributed(comm, &cur, &partner) {
            Some((coarse, link)) => {
                levels.push((cur, link));
                cur = coarse;
            }
            None => break,
        }
    }

    // Coarsest graph to rank 0, serial kernel, broadcast back.
    let mut part = coarsest_solve(comm, &cur, cfg, frac, vertex_units);

    // Uncoarsening with distributed refinement.
    let max_w = part_ceilings(g.total_vwgt(), cfg, frac);
    loop {
        let level = levels.len();
        refine_distributed(
            comm,
            &cur,
            &mut part,
            &max_w,
            cfg.seed,
            level,
            cfg.refine_passes,
            vertex_units,
        );
        match levels.pop() {
            Some((finer, link)) => {
                part = project_parts(comm, &link, &part, finer.local_n());
                cur = finer;
            }
            None => break,
        }
    }

    // Reassemble in the original vertex numbering on rank 0 and broadcast.
    let nwords = words_for_bytes(4 * part.len());
    let pieces = comm.gatherv(0, nwords, part);
    let full = pieces.map(|pieces| {
        let mut out = vec![0u32; n];
        let mut idx = vec![0usize; p];
        for v in 0..n {
            let r = owner[v] as usize;
            out[v] = pieces[r][idx[r]];
            idx[r] += 1;
        }
        out
    });
    comm.bcast(0, words_for_bytes(4 * n), full)
}

/// Result of a standalone [`repartition_distributed`] run.
#[derive(Debug, Clone)]
pub struct DistPartition {
    /// The partition (one part id per vertex of the input graph).
    pub part: Vec<u32>,
    /// Virtual-time makespan of the partitioning step.
    pub makespan: f64,
    /// Full per-rank event trace of the run.
    pub trace: TraceLog,
}

/// Run the distributed repartitioner on its own `nranks`-rank SPMD session.
///
/// This is the standalone harness the differential tests use; the adaption
/// engine instead calls [`repartition_body`] inside its persistent session.
/// Panics if the ranks disagree on the result (they cannot, by
/// construction — the check is the point).
#[allow(clippy::too_many_arguments)]
pub fn repartition_distributed(
    g: &Graph,
    owner: &[u32],
    prev: Option<&[u32]>,
    cfg: &PartitionConfig,
    caps: &[f64],
    nranks: usize,
    model: MachineModel,
    vertex_units: f64,
) -> DistPartition {
    let results = spmd(nranks, model, |comm| {
        comm.phase("partition", |c| {
            repartition_body(c, g, owner, prev, cfg, caps, vertex_units)
        })
    });
    let part = results[0].value.clone();
    for r in &results {
        assert_eq!(r.value, part, "rank {} disagrees on the partition", r.rank);
    }
    DistPartition {
        part,
        makespan: makespan(&results),
        trace: TraceLog::from_results(&results),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kway::{partition_kway, quality, tests::grid3d};
    use crate::metrics::{imbalance_weighted, part_weights};
    use crate::repart::repartition_kway;

    fn block_owner(n: usize, p: usize) -> Vec<u32> {
        (0..n).map(|v| (v * p / n) as u32).collect()
    }

    #[test]
    fn exact_path_matches_serial_reference_bit_for_bit() {
        let mut g = grid3d(8, 8, 4); // 256 vertices ≤ default target 128? no: force
        let mut cfg = PartitionConfig::new(4);
        cfg.coarsen_to = g.n(); // force the exact-serial path
        let prev = partition_kway(&g, &cfg);
        for v in 0..g.n() {
            if prev[v] == 2 {
                g.vwgt.to_mut()[v] = 5;
            }
        }
        let serial = repartition_kway(&g, &cfg, &prev);
        for p in [2usize, 4, 8] {
            let owner = block_owner(g.n(), p);
            let d = repartition_distributed(
                &g,
                &owner,
                Some(&prev),
                &cfg,
                &[1.0; 4],
                p,
                MachineModel::zero(),
                0.0,
            );
            assert_eq!(d.part, serial, "P={p} exact path diverged");
        }
    }

    #[test]
    fn multilevel_path_is_deterministic_and_balanced() {
        let mut g = grid3d(12, 12, 8); // 1152 vertices > target 128
        let cfg = PartitionConfig::new(8);
        let prev = partition_kway(&g, &cfg);
        for v in 0..g.n() {
            if prev[v] == 0 || prev[v] == 3 {
                g.vwgt.to_mut()[v] = 4;
            }
        }
        let owner: Vec<u32> = prev.clone();
        let run = || {
            repartition_distributed(
                &g,
                &owner,
                Some(&prev),
                &cfg,
                &[1.0; 8],
                8,
                MachineModel::sp2(),
                0.5,
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.part, b.part, "distributed repartition not deterministic");
        assert!((a.makespan - b.makespan).abs() < 1e-12);
        let q = quality(&g, &a.part, 8);
        assert!(
            q.imbalance <= cfg.imbalance_tol * 1.10 + 0.02,
            "imbalance {}",
            q.imbalance
        );
        assert!(a.makespan > 0.0, "partitioning must take virtual time");
    }

    #[test]
    fn result_is_independent_of_machine_model() {
        let g = grid3d(10, 10, 6);
        let cfg = PartitionConfig::new(4);
        let prev = partition_kway(&g, &cfg);
        let owner = block_owner(g.n(), 4);
        let fast = repartition_distributed(
            &g,
            &owner,
            Some(&prev),
            &cfg,
            &[1.0; 4],
            4,
            MachineModel::zero(),
            0.0,
        );
        let slow = repartition_distributed(
            &g,
            &owner,
            Some(&prev),
            &cfg,
            &[1.0; 4],
            4,
            MachineModel::sp2(),
            3.0,
        );
        assert_eq!(
            fast.part, slow.part,
            "partition must not depend on the cost model"
        );
        assert!(slow.makespan > fast.makespan);
    }

    #[test]
    fn capacity_weighted_multilevel_tracks_fractions() {
        let g = grid3d(12, 12, 8);
        let cfg = PartitionConfig::new(4);
        let prev = partition_kway(&g, &cfg);
        let caps = [2.0, 1.0, 1.0, 1.0];
        let owner = block_owner(g.n(), 4);
        let d = repartition_distributed(
            &g,
            &owner,
            Some(&prev),
            &cfg,
            &caps,
            4,
            MachineModel::zero(),
            0.0,
        );
        let w = part_weights(&g, &d.part, 4);
        let eff = imbalance_weighted(&w, &caps);
        assert!(
            eff <= cfg.imbalance_tol * 1.10 + 0.05,
            "capacity-weighted imbalance {eff} (weights {w:?})"
        );
        let share = w[0] as f64 / g.total_vwgt() as f64;
        assert!(
            (share - 0.4).abs() < 0.07,
            "double-capacity part carries {share:.3}, expected ≈0.4"
        );
    }

    #[test]
    fn fresh_partition_without_prev_is_valid() {
        let g = grid3d(12, 12, 8);
        let cfg = PartitionConfig::new(6);
        let owner = block_owner(g.n(), 3);
        let d = repartition_distributed(
            &g,
            &owner,
            None,
            &cfg,
            &[1.0; 6],
            3,
            MachineModel::zero(),
            0.0,
        );
        assert_eq!(d.part.len(), g.n());
        assert!(d.part.iter().all(|&p| (p as usize) < 6));
        let w = part_weights(&g, &d.part, 6);
        assert!(w.iter().all(|&x| x > 0), "empty part in {w:?}");
    }
}
