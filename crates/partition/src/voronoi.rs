//! Voronoi / centroid-shift balancer on the space-filling curve: each part
//! owns a generator point in SFC key space, vertices join the nearest
//! generator under a multiplicatively-weighted distance, and Lloyd-style
//! rounds shift generators to their part centroids while per-part radii
//! grow or shrink toward the capacity-weighted load target. The geometric
//! cousin of [`crate::sfc`]'s range splitter, after the Voronoi
//! cell-growth schemes of the dynamic-load-balancing literature
//! (arXiv:1408.3196): where the range splitter cuts the curve at
//! cumulative targets, the Voronoi balancer *grows and shrinks cells* —
//! which keeps parts compact around their centroids and makes incremental
//! rebalancing a small perturbation of the generators rather than a fresh
//! global cut.
//!
//! Determinism: distance ties break to the smallest part id (strict `<`
//! comparison), all accumulations run in ascending vertex order, and the
//! round count is a fixed constant. The best assignment seen across
//! rounds is returned; when a previous partition seeds the search it is
//! the incumbent best, so the result never has worse capacity-weighted
//! imbalance than the seed and an already-balanced partition is an exact
//! fixed point.
//!
//! The SPMD body follows the [`crate::sfc`] contract: replicated
//! arithmetic only, so the partition is a deterministic function of
//! `(keys, vwgt, prev, nparts, caps)` and independent of the machine
//! model; virtual time comes from the per-vertex assignment charge and
//! the real moved-triple exchange + part-weight allreduce.

use plum_parsim::{makespan, spmd, Comm, MachineModel, TraceLog};

use crate::distributed::DistPartition;
use crate::metrics::{combine_dual, dual_uniform, imbalance_dual, imbalance_weighted, weights_of};
use crate::sfc::{
    cap_fractions, charge, exchange_and_check, resolve_replicated, sfc_split, DUAL_TRIPLE_BYTES,
    TRIPLE_BYTES,
};

/// Lloyd rounds. Generators converge geometrically on the 1D curve; the
/// best-seen assignment is kept, so extra rounds can only help quality.
pub const VORONOI_ROUNDS: usize = 16;

/// Radius clamp bounds: keeps a starved or overloaded cell from collapsing
/// to zero / swallowing the curve in one round.
const RADIUS_MIN: f64 = 1e-3;
const RADIUS_MAX: f64 = 1e3;

/// Nearest-generator assignment under the multiplicatively-weighted
/// distance `|key − g_p| / r_p`. Strict `<` keeps the lowest part id on
/// ties — deterministic for any key distribution.
fn assign(keys: &[u64], gens: &[f64], radii: &[f64]) -> Vec<u32> {
    keys.iter()
        .map(|&k| {
            let x = k as f64;
            let mut best = 0u32;
            let mut best_d = f64::INFINITY;
            for (p, (&g, &r)) in gens.iter().zip(radii).enumerate() {
                let d = (x - g).abs() / r;
                if d < best_d {
                    best_d = d;
                    best = p as u32;
                }
            }
            best
        })
        .collect()
}

/// Weighted part centroids in key space; empty parts keep their previous
/// generator (`fallback`).
fn centroids(
    keys: &[u64],
    vwgt: &[u64],
    part: &[u32],
    nparts: usize,
    fallback: &[f64],
) -> Vec<f64> {
    let mut ksum = vec![0.0f64; nparts];
    let mut wsum = vec![0.0f64; nparts];
    for v in 0..keys.len() {
        let p = part[v] as usize;
        let w = vwgt[v] as f64;
        ksum[p] += w * keys[v] as f64;
        wsum[p] += w;
    }
    (0..nparts)
        .map(|p| {
            if wsum[p] > 0.0 {
                ksum[p] / wsum[p]
            } else {
                fallback[p]
            }
        })
        .collect()
}

/// Shared core: Lloyd rounds from a seed (or a fresh SFC split), tracking
/// the best assignment under `judge`; the seed is the incumbent, so the
/// result never judges worse than the seed.
fn voronoi_core(
    keys: &[u64],
    w_drive: &[u64],
    seed: Option<&[u32]>,
    nparts: usize,
    caps: &[f64],
    judge: impl Fn(&[u32]) -> f64,
) -> Vec<u32> {
    let n = keys.len();
    assert_eq!(n, w_drive.len(), "one weight per vertex");
    if let Some(prev) = seed {
        assert_eq!(n, prev.len(), "one previous part per vertex");
    }
    if nparts <= 1 || n == 0 {
        return seed.map(<[u32]>::to_vec).unwrap_or_else(|| vec![0; n]);
    }
    let frac = cap_fractions(caps, nparts);
    let total: u64 = w_drive.iter().sum();
    if total == 0 {
        return seed.map(<[u32]>::to_vec).unwrap_or_else(|| vec![0; n]);
    }
    // Quantile fallback generators for parts that start (or go) empty.
    let kmin = *keys.iter().min().unwrap() as f64;
    let kmax = *keys.iter().max().unwrap() as f64;
    let quantile: Vec<f64> = (0..nparts)
        .map(|p| kmin + (p as f64 + 0.5) / nparts as f64 * (kmax - kmin))
        .collect();
    let init = match seed {
        Some(prev) => prev.to_vec(),
        None => sfc_split(keys, w_drive, nparts, caps),
    };
    let mut gens = centroids(keys, w_drive, &init, nparts, &quantile);
    let mut radii = vec![1.0f64; nparts];
    // The seed is the incumbent: strict `<` below means a round must
    // *improve* on it to win, which makes a balanced seed a fixed point.
    let mut best: Option<(f64, Vec<u32>)> = seed.map(|s| (judge(s), s.to_vec()));
    for _ in 0..VORONOI_ROUNDS {
        let part = assign(keys, &gens, &radii);
        let imb = judge(&part);
        let better = match &best {
            None => true,
            Some((b, _)) => imb < *b,
        };
        if better {
            best = Some((imb, part.clone()));
        }
        // Lloyd shift + radius update toward the capacity target.
        let w = weights_of(w_drive, &part, nparts);
        gens = centroids(keys, w_drive, &part, nparts, &gens);
        for p in 0..nparts {
            let target = total as f64 * frac[p];
            // Floor keeps an empty cell growing instead of dividing by 0.
            let actual = (w[p] as f64).max(total as f64 / (nparts as f64 * 64.0));
            radii[p] = (radii[p] * (target / actual).sqrt()).clamp(RADIUS_MIN, RADIUS_MAX);
        }
    }
    best.expect("nparts ≥ 2 runs at least one round").1
}

/// Serial kernel, from-scratch flavor: partition by Voronoi cell growth
/// seeded from the capacity-weighted SFC split.
pub fn voronoi_partition(keys: &[u64], vwgt: &[u64], nparts: usize, caps: &[f64]) -> Vec<u32> {
    let judge = |part: &[u32]| imbalance_weighted(&weights_of(vwgt, part, nparts), caps);
    voronoi_core(keys, vwgt, None, nparts, caps, judge)
}

/// Serial kernel, rebalance flavor: seed the generators from the previous
/// partition's centroids and keep the previous partition as the incumbent
/// — never worsens the effective imbalance, and a balanced input is
/// returned unchanged.
pub fn voronoi_balance(
    keys: &[u64],
    vwgt: &[u64],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
) -> Vec<u32> {
    let judge = |part: &[u32]| imbalance_weighted(&weights_of(vwgt, part, nparts), caps);
    voronoi_core(keys, vwgt, Some(prev), nparts, caps, judge)
}

/// Dual-constraint from-scratch kernel: drive the cells with the combined
/// weight, judge on the dual effective imbalance. A uniform second weight
/// vector reduces bit-exactly to [`voronoi_partition`].
pub fn voronoi_partition_dual(
    keys: &[u64],
    w1: &[u64],
    w2: &[u64],
    nparts: usize,
    caps: &[f64],
) -> Vec<u32> {
    if dual_uniform(w2) {
        return voronoi_partition(keys, w1, nparts, caps);
    }
    let combined = combine_dual(w1, w2);
    let judge = |part: &[u32]| {
        imbalance_dual(
            &weights_of(w1, part, nparts),
            &weights_of(w2, part, nparts),
            caps,
        )
    };
    voronoi_core(keys, &combined, None, nparts, caps, judge)
}

/// Dual-constraint rebalance kernel; uniform `w2` reduces bit-exactly to
/// [`voronoi_balance`].
pub fn voronoi_balance_dual(
    keys: &[u64],
    w1: &[u64],
    w2: &[u64],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
) -> Vec<u32> {
    if dual_uniform(w2) {
        return voronoi_balance(keys, w1, prev, nparts, caps);
    }
    let combined = combine_dual(w1, w2);
    let judge = |part: &[u32]| {
        imbalance_dual(
            &weights_of(w1, part, nparts),
            &weights_of(w2, part, nparts),
            caps,
        )
    };
    voronoi_core(keys, &combined, Some(prev), nparts, caps, judge)
}

/// SPMD body of the Voronoi balancer: the Lloyd rounds are replicated
/// arithmetic on the (allreduce-replicated) part weights and centroids, so
/// the real traffic is the moved-triple exchange plus the part-weight
/// allreduce; the per-vertex charge covers the local assignment scans.
/// Bit-identical to the serial kernel on every rank under every machine
/// model. `prev = None` runs the from-scratch flavor (and ships every
/// local triple); `Some` runs the rebalance flavor (moved triples only).
#[allow(clippy::too_many_arguments)]
pub fn voronoi_body(
    comm: &mut Comm,
    keys: &[u64],
    vwgt: &[u64],
    owner: &[u32],
    prev: Option<&[u32]>,
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
    precomputed: Option<&[u32]>,
) -> Vec<u32> {
    let rank = comm.rank();
    let part = resolve_replicated(precomputed, || match prev {
        Some(prev) => voronoi_balance(keys, vwgt, prev, nparts, caps),
        None => voronoi_partition(keys, vwgt, nparts, caps),
    });
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    charge(comm, n_local, vertex_units);
    exchange_and_check(comm, vwgt, None, owner, &part, prev, nparts, TRIPLE_BYTES);
    part
}

/// Dual-constraint SPMD body; uniform `w2` delegates to [`voronoi_body`],
/// leaving its traffic untouched.
#[allow(clippy::too_many_arguments)]
pub fn voronoi_body_dual(
    comm: &mut Comm,
    keys: &[u64],
    w1: &[u64],
    w2: &[u64],
    owner: &[u32],
    prev: Option<&[u32]>,
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
    precomputed: Option<&[u32]>,
) -> Vec<u32> {
    if dual_uniform(w2) {
        return voronoi_body(
            comm,
            keys,
            w1,
            owner,
            prev,
            nparts,
            caps,
            vertex_units,
            precomputed,
        );
    }
    let rank = comm.rank();
    let part = resolve_replicated(precomputed, || match prev {
        Some(prev) => voronoi_balance_dual(keys, w1, w2, prev, nparts, caps),
        None => voronoi_partition_dual(keys, w1, w2, nparts, caps),
    });
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    charge(comm, n_local, vertex_units);
    exchange_and_check(
        comm,
        w1,
        Some(w2),
        owner,
        &part,
        prev,
        nparts,
        DUAL_TRIPLE_BYTES,
    );
    part
}

/// Standalone distributed harness (mirrors [`crate::sfc::sfc_distributed`]).
#[allow(clippy::too_many_arguments)]
pub fn voronoi_distributed(
    keys: &[u64],
    vwgt: &[u64],
    owner: &[u32],
    prev: Option<&[u32]>,
    nparts: usize,
    caps: &[f64],
    nranks: usize,
    model: MachineModel,
    vertex_units: f64,
) -> DistPartition {
    let hoisted = match prev {
        Some(prev) => voronoi_balance(keys, vwgt, prev, nparts, caps),
        None => voronoi_partition(keys, vwgt, nparts, caps),
    };
    let hoisted = &hoisted;
    let results = spmd(nranks, model, move |comm| {
        comm.phase("partition", |c| {
            voronoi_body(
                c,
                keys,
                vwgt,
                owner,
                prev,
                nparts,
                caps,
                vertex_units,
                Some(hoisted),
            )
        })
    });
    let part = results[0].value.clone();
    for r in &results {
        assert_eq!(r.value, part, "rank {} disagrees on the partition", r.rank);
    }
    DistPartition {
        part,
        makespan: makespan(&results),
        trace: TraceLog::from_results(&results),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_partition_is_exact_fixed_point() {
        let keys: Vec<u64> = (0..64).map(|v| v * 100).collect();
        let vwgt = vec![1u64; 64];
        let prev: Vec<u32> = (0..64).map(|v| (v / 16) as u32).collect();
        let caps = vec![1.0; 4];
        assert_eq!(voronoi_balance(&keys, &vwgt, &prev, 4, &caps), prev);
    }

    #[test]
    fn hot_block_sheds_load_monotonically() {
        let keys: Vec<u64> = (0..64).map(|v| v * 100).collect();
        let mut vwgt = vec![1u64; 64];
        for w in vwgt.iter_mut().take(16) {
            *w = 8;
        }
        let prev: Vec<u32> = (0..64).map(|v| (v / 16) as u32).collect();
        let caps = vec![1.0; 4];
        let part = voronoi_balance(&keys, &vwgt, &prev, 4, &caps);
        let old = imbalance_weighted(&weights_of(&vwgt, &prev, 4), &caps);
        let new = imbalance_weighted(&weights_of(&vwgt, &part, 4), &caps);
        assert!(new < old, "hot block must shed: {new} vs {old}");
    }

    #[test]
    fn from_scratch_beats_trivial_split_on_skewed_keys() {
        // Keys clustered at both ends; from-scratch Voronoi must produce a
        // complete, reasonably balanced partition.
        let keys: Vec<u64> = (0..100)
            .map(|v| if v < 50 { v } else { 1_000_000 + v })
            .collect();
        let vwgt = vec![1u64; 100];
        let caps = vec![1.0; 4];
        let part = voronoi_partition(&keys, &vwgt, 4, &caps);
        assert_eq!(part.len(), 100);
        assert!(part.iter().all(|&p| p < 4));
        let imb = imbalance_weighted(&weights_of(&vwgt, &part, 4), &caps);
        assert!(imb <= 1.3, "from-scratch Voronoi too lopsided: {imb}");
    }

    #[test]
    fn capacity_weighted_cells_track_fractions() {
        let keys: Vec<u64> = (0..90).map(|v| v * 10).collect();
        let vwgt = vec![1u64; 90];
        let prev: Vec<u32> = (0..90).map(|v| (v / 30) as u32).collect();
        // Part 0 has double capacity: equal thirds are imbalanced in
        // effective terms, and the balancer must feed part 0.
        let caps = vec![2.0, 1.0, 1.0];
        let part = voronoi_balance(&keys, &vwgt, &prev, 3, &caps);
        let old = imbalance_weighted(&weights_of(&vwgt, &prev, 3), &caps);
        let new = imbalance_weighted(&weights_of(&vwgt, &part, 3), &caps);
        assert!(
            new < old,
            "capacity-weighted imbalance must drop: {new} vs {old}"
        );
        let w = weights_of(&vwgt, &part, 3);
        assert!(w[0] > 30, "double-capacity cell must grow: {w:?}");
    }

    #[test]
    fn dual_uniform_reduces_bit_exactly() {
        let keys: Vec<u64> = (0..48).map(|v| v * 7).collect();
        let mut vwgt = vec![1u64; 48];
        for w in vwgt.iter_mut().take(12) {
            *w = 5;
        }
        let prev: Vec<u32> = (0..48).map(|v| (v / 12) as u32).collect();
        let caps = vec![1.0; 4];
        let w2 = vec![2u64; 48];
        assert_eq!(
            voronoi_balance_dual(&keys, &vwgt, &w2, &prev, 4, &caps),
            voronoi_balance(&keys, &vwgt, &prev, 4, &caps)
        );
        assert_eq!(
            voronoi_partition_dual(&keys, &vwgt, &w2, 4, &caps),
            voronoi_partition(&keys, &vwgt, 4, &caps)
        );
    }
}
