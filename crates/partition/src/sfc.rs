//! Space-filling-curve geometric partitioning: key-sort/split into
//! capacity-weighted contiguous ranges, plus a cheap 1D boundary-diffusion
//! repair.
//!
//! The geometric alternative to the multilevel kernel, in the mold of
//! AMReX's `DistributionMapping::makeSFC` and Cubism's diffusion-based
//! rebalancing: elements carry a space-filling-curve key (from
//! `plum_mesh::sfc`), the key order is cut into `nparts` contiguous ranges
//! whose weights track the parts' capacity fractions, and mild imbalance is
//! repaired by *shifting range boundaries* one vertex at a time instead of
//! re-partitioning. No graph, no coarsening — cost is a local sort plus
//! O(nparts) words of collective traffic, which is what makes it the cheap
//! end of the partitioner portfolio.
//!
//! The SPMD bodies follow the same contract as
//! [`crate::distributed::repartition_body`]: all control flow branches on
//! replicated data only, so the partition is a deterministic function of
//! `(keys, vwgt, prev, nparts, caps)` and independent of the machine model;
//! virtual time comes from per-vertex compute charges and real message
//! traffic (alltoallv key exchange, allreduce'd part weights).

use plum_parsim::{makespan, spmd, words_for_bytes, Comm, MachineModel, TraceLog};

use crate::distributed::DistPartition;
use crate::metrics::{combine_dual, dual_uniform, imbalance_dual, imbalance_weighted, weights_of};

/// Boundary-shift sweeps in the diffusion repair. Each sweep walks the curve
/// once; loads converge geometrically, so a handful suffices.
const DIFFUSE_PASSES: usize = 8;

/// Bytes per (key, id, weight) triple in the distributed key exchange.
/// Shared with the other geometric SPMD bodies (`diffusion2`, `voronoi`).
pub(crate) const TRIPLE_BYTES: usize = 20;

/// Bytes per (key, id, weight, weight2) quad in the dual-constraint
/// exchange.
pub(crate) const DUAL_TRIPLE_BYTES: usize = 28;

/// Charge `vertices` visits of local partitioning work.
pub(crate) fn charge(comm: &mut Comm, vertices: usize, vertex_units: f64) {
    let units = vertex_units * vertices as f64;
    if units > 0.0 {
        comm.compute(units);
    }
}

/// Curve order: vertex indices sorted by `(key, index)`. The index
/// tie-break makes the order total even when centroids collide on the
/// quantization lattice.
pub fn sfc_order(keys: &[u64]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..keys.len() as u32).collect();
    order.sort_unstable_by_key(|&v| (keys[v as usize], v));
    order
}

/// Per-part capacity fractions (summing to 1). A degenerate capacity vector
/// falls back to uniform — the same defined-result policy as
/// [`imbalance_weighted`].
pub(crate) fn cap_fractions(caps: &[f64], nparts: usize) -> Vec<f64> {
    assert_eq!(caps.len(), nparts, "one capacity per part");
    let sum: f64 = caps.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return vec![1.0 / nparts as f64; nparts];
    }
    caps.iter().map(|&c| c / sum).collect()
}

/// Cut the curve order into `nparts` contiguous ranges at the cumulative
/// capacity targets. Before each vertex is placed, the cursor advances past
/// every target already met, so part `p` closes at the first vertex that
/// reaches `total · Σ_{q≤p} f_q` — its weight exceeds its capacity share by
/// at most one vertex weight.
pub fn sfc_split(keys: &[u64], vwgt: &[u64], nparts: usize, caps: &[f64]) -> Vec<u32> {
    assert_eq!(keys.len(), vwgt.len(), "one weight per vertex");
    let frac = cap_fractions(caps, nparts);
    let total: u64 = vwgt.iter().sum();
    let mut targets = Vec::with_capacity(nparts);
    let mut cum_frac = 0.0;
    for &f in &frac {
        cum_frac += f;
        targets.push(total as f64 * cum_frac);
    }
    let mut part = vec![0u32; keys.len()];
    let mut p = 0usize;
    let mut cum = 0u64;
    for &v in &sfc_order(keys) {
        while p + 1 < nparts && cum as f64 >= targets[p] {
            p += 1;
        }
        part[v as usize] = p as u32;
        cum += vwgt[v as usize];
    }
    part
}

/// Shift range boundaries along the curve until no single-vertex move
/// lowers the effective load of the pair it touches. Each accepted move
/// strictly reduces `max(w_a/c_a, w_b/c_b)` for the two parts at one
/// boundary and leaves every other part untouched, so the global effective
/// imbalance is monotonically non-increasing — diffusion can only repair.
pub fn sfc_diffuse(
    keys: &[u64],
    vwgt: &[u64],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
) -> Vec<u32> {
    assert_eq!(keys.len(), vwgt.len(), "one weight per vertex");
    assert_eq!(keys.len(), prev.len(), "one previous part per vertex");
    let frac = cap_fractions(caps, nparts);
    let order = sfc_order(keys);
    let mut part = prev.to_vec();
    let mut w = vec![0u64; nparts];
    for v in 0..part.len() {
        w[part[v] as usize] += vwgt[v];
    }
    let load = |w: u64, p: usize| w as f64 / frac[p];
    for pass in 0..DIFFUSE_PASSES {
        let mut moved = false;
        let idx: Box<dyn Iterator<Item = usize>> = if pass % 2 == 0 {
            Box::new(0..order.len().saturating_sub(1))
        } else {
            Box::new((0..order.len().saturating_sub(1)).rev())
        };
        for i in idx {
            let v = order[i] as usize;
            let u = order[i + 1] as usize;
            let (a, b) = (part[v] as usize, part[u] as usize);
            if a == b {
                continue;
            }
            let old = load(w[a], a).max(load(w[b], b));
            // Candidate 1: pull v across the boundary into b.
            let fwd = load(w[a] - vwgt[v], a).max(load(w[b] + vwgt[v], b));
            // Candidate 2: pull u back across into a.
            let back = load(w[a] + vwgt[u], a).max(load(w[b] - vwgt[u], b));
            if fwd <= back && fwd < old {
                w[a] -= vwgt[v];
                w[b] += vwgt[v];
                part[v] = b as u32;
                moved = true;
            } else if back < fwd && back < old {
                w[a] += vwgt[u];
                w[b] -= vwgt[u];
                part[u] = a as u32;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    part
}

/// Full SFC partition: capacity-weighted contiguous split, then boundary
/// diffusion to shave the one-vertex overshoot the split allows.
pub fn sfc_partition(keys: &[u64], vwgt: &[u64], nparts: usize, caps: &[f64]) -> Vec<u32> {
    let split = sfc_split(keys, vwgt, nparts, caps);
    sfc_diffuse(keys, vwgt, &split, nparts, caps)
}

/// Dual-constraint contiguous split: the curve is cut at the cumulative
/// capacity targets of the *combined* totals-normalized weight, so the sum
/// of the two normalized constraints tracks the capacity shares; the dual
/// diffusion then chases the max. A uniform second weight vector delegates
/// to [`sfc_split`] bit-exactly.
pub fn sfc_split_dual(
    keys: &[u64],
    w1: &[u64],
    w2: &[u64],
    nparts: usize,
    caps: &[f64],
) -> Vec<u32> {
    if dual_uniform(w2) {
        return sfc_split(keys, w1, nparts, caps);
    }
    let combined = combine_dual(w1, w2);
    sfc_split(keys, &combined, nparts, caps)
}

/// Dual-constraint boundary diffusion: identical sweep structure to
/// [`sfc_diffuse`], but the load a move is judged by is the *binding*
/// constraint — the worse of the two totals-normalized loads over the
/// part's capacity fraction. Each accepted move strictly lowers the pair's
/// binding load, so the global max-of-imbalances objective is monotonically
/// non-increasing. A uniform second weight vector delegates to
/// [`sfc_diffuse`] bit-exactly.
pub fn sfc_diffuse_dual(
    keys: &[u64],
    w1: &[u64],
    w2: &[u64],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
) -> Vec<u32> {
    if dual_uniform(w2) {
        return sfc_diffuse(keys, w1, prev, nparts, caps);
    }
    assert_eq!(keys.len(), w1.len(), "one weight per vertex");
    assert_eq!(keys.len(), w2.len(), "one second weight per vertex");
    assert_eq!(keys.len(), prev.len(), "one previous part per vertex");
    let frac = cap_fractions(caps, nparts);
    let order = sfc_order(keys);
    let mut part = prev.to_vec();
    let mut a1 = vec![0u64; nparts];
    let mut a2 = vec![0u64; nparts];
    for v in 0..part.len() {
        a1[part[v] as usize] += w1[v];
        a2[part[v] as usize] += w2[v];
    }
    let t1: u64 = w1.iter().sum();
    let t2: u64 = w2.iter().sum();
    let n1 = if t1 == 0 { 1.0 } else { t1 as f64 };
    let n2 = if t2 == 0 { 1.0 } else { t2 as f64 };
    let load = |x1: u64, x2: u64, p: usize| (x1 as f64 / n1).max(x2 as f64 / n2) / frac[p];
    for pass in 0..DIFFUSE_PASSES {
        let mut moved = false;
        let idx: Box<dyn Iterator<Item = usize>> = if pass % 2 == 0 {
            Box::new(0..order.len().saturating_sub(1))
        } else {
            Box::new((0..order.len().saturating_sub(1)).rev())
        };
        for i in idx {
            let v = order[i] as usize;
            let u = order[i + 1] as usize;
            let (a, b) = (part[v] as usize, part[u] as usize);
            if a == b {
                continue;
            }
            let old = load(a1[a], a2[a], a).max(load(a1[b], a2[b], b));
            // Candidate 1: pull v across the boundary into b.
            let fwd =
                load(a1[a] - w1[v], a2[a] - w2[v], a).max(load(a1[b] + w1[v], a2[b] + w2[v], b));
            // Candidate 2: pull u back across into a.
            let back =
                load(a1[a] + w1[u], a2[a] + w2[u], a).max(load(a1[b] - w1[u], a2[b] - w2[u], b));
            if fwd <= back && fwd < old {
                a1[a] -= w1[v];
                a2[a] -= w2[v];
                a1[b] += w1[v];
                a2[b] += w2[v];
                part[v] = b as u32;
                moved = true;
            } else if back < fwd && back < old {
                a1[a] += w1[u];
                a2[a] += w2[u];
                a1[b] -= w1[u];
                a2[b] -= w2[u];
                part[u] = a as u32;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    part
}

/// Full dual-constraint SFC partition: combined-weight contiguous split,
/// then binding-constraint boundary diffusion.
pub fn sfc_partition_dual(
    keys: &[u64],
    w1: &[u64],
    w2: &[u64],
    nparts: usize,
    caps: &[f64],
) -> Vec<u32> {
    let split = sfc_split_dual(keys, w1, w2, nparts, caps);
    sfc_diffuse_dual(keys, w1, w2, &split, nparts, caps)
}

/// Rank that owns part `p` when `nparts` parts are folded onto `nranks`
/// ranks (block mapping, the same fold the engine uses).
fn part_home(p: usize, nparts: usize, nranks: usize) -> usize {
    p * nranks / nparts
}

/// Shared tail of the SPMD bodies: exchange locally-owned triples to each
/// destination part's home rank, then cross-check allreduce'd part weights
/// against the replicated result. Dual-constraint bodies pass their second
/// weight vector (cross-checked by its own allreduce) and the wider
/// per-item payload; single-constraint callers pass `None` +
/// [`TRIPLE_BYTES`], which leaves their traffic — and thus their virtual
/// times — untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn exchange_and_check(
    comm: &mut Comm,
    vwgt: &[u64],
    vwgt2: Option<&[u64]>,
    owner: &[u32],
    part: &[u32],
    moved_only: Option<&[u32]>,
    nparts: usize,
    item_bytes: usize,
) {
    let rank = comm.rank();
    let nranks = comm.nranks();
    let mut counts = vec![0u64; nranks];
    let mut local_w = vec![0u64; nparts];
    for v in 0..part.len() {
        if owner[v] as usize != rank {
            continue;
        }
        local_w[part[v] as usize] += vwgt[v];
        if let Some(prev) = moved_only {
            if prev[v] == part[v] {
                continue; // unmoved vertices cost no traffic in diffusion
            }
        }
        counts[part_home(part[v] as usize, nparts, nranks)] += 1;
    }
    let items: Vec<(usize, u64, u64)> = counts
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(dst, &c)| (dst, words_for_bytes(item_bytes * c as usize), c))
        .collect();
    let received = comm.alltoallv_sparse(items);
    let received_total: u64 = received.iter().map(|&(_, c)| c).sum();
    let global_w = comm.allreduce(nparts as u64, local_w, |a, b| {
        a.iter().zip(&b).map(|(x, y)| x + y).collect()
    });
    // One pass over the vertices (not one per part) builds the reference.
    let mut expect = vec![0u64; nparts];
    for v in 0..part.len() {
        expect[part[v] as usize] += vwgt[v];
    }
    assert_eq!(global_w, expect, "allreduce'd part weights diverged");
    if let Some(w2) = vwgt2 {
        let mut local_w2 = vec![0u64; nparts];
        for v in 0..part.len() {
            if owner[v] as usize == rank {
                local_w2[part[v] as usize] += w2[v];
            }
        }
        let global_w2 = comm.allreduce(nparts as u64, local_w2, |a, b| {
            a.iter().zip(&b).map(|(x, y)| x + y).collect()
        });
        assert_eq!(
            global_w2,
            weights_of(w2, part, nparts),
            "allreduce'd second-constraint part weights diverged"
        );
    }
    // Every triple sent somewhere was received by exactly one home rank.
    let sent_here: u64 = comm.allreduce_sum_u64(counts.iter().sum::<u64>());
    let recv_all: u64 = comm.allreduce_sum_u64(received_total);
    assert_eq!(sent_here, recv_all, "key exchange lost triples");
}

/// Use a host-precomputed replicated partition when one is provided,
/// falling back to computing it locally. The SPMD partitioner bodies run
/// *replicated* arithmetic (every rank computes the identical answer from
/// identical inputs), so callers driving thousands of ranks can compute it
/// once on the host and pass it in; the *virtual* compute charge is taken
/// either way, so modeled times do not depend on who did the arithmetic.
/// Debug builds cross-check the hoisted value against a local recompute.
pub(crate) fn resolve_replicated(
    precomputed: Option<&[u32]>,
    compute: impl FnOnce() -> Vec<u32>,
) -> Vec<u32> {
    match precomputed {
        Some(part) => {
            debug_assert_eq!(
                part,
                &compute()[..],
                "host-precomputed partition diverges from the replicated arithmetic"
            );
            part.to_vec()
        }
        None => compute(),
    }
}

/// SPMD body of the full SFC partitioner: local key sort, alltoallv triple
/// exchange to the destination ranks, allreduce'd part weights. Returns the
/// same partition [`sfc_partition`] computes serially — bit-identical on
/// every rank and under every machine model. Pass the replicated result as
/// `precomputed` to skip the per-rank recompute (see
/// [`resolve_replicated`]).
#[allow(clippy::too_many_arguments)]
pub fn sfc_body(
    comm: &mut Comm,
    keys: &[u64],
    vwgt: &[u64],
    owner: &[u32],
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
    precomputed: Option<&[u32]>,
) -> Vec<u32> {
    let rank = comm.rank();
    let part = resolve_replicated(precomputed, || sfc_partition(keys, vwgt, nparts, caps));
    // Local work: key generation + comparison sort of the local block.
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    charge(comm, n_local, vertex_units);
    exchange_and_check(comm, vwgt, None, owner, &part, None, nparts, TRIPLE_BYTES);
    part
}

/// Dual-constraint SPMD body of the full SFC partitioner: the same
/// structure as [`sfc_body`] with the wider (key, id, w1, w2) payload and a
/// second cross-checked weight allreduce. A uniform second weight vector
/// delegates to [`sfc_body`], leaving its traffic untouched.
#[allow(clippy::too_many_arguments)]
pub fn sfc_body_dual(
    comm: &mut Comm,
    keys: &[u64],
    w1: &[u64],
    w2: &[u64],
    owner: &[u32],
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
    precomputed: Option<&[u32]>,
) -> Vec<u32> {
    if dual_uniform(w2) {
        return sfc_body(
            comm,
            keys,
            w1,
            owner,
            nparts,
            caps,
            vertex_units,
            precomputed,
        );
    }
    let rank = comm.rank();
    let part = resolve_replicated(precomputed, || {
        sfc_partition_dual(keys, w1, w2, nparts, caps)
    });
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    charge(comm, n_local, vertex_units);
    exchange_and_check(
        comm,
        w1,
        Some(w2),
        owner,
        &part,
        None,
        nparts,
        DUAL_TRIPLE_BYTES,
    );
    part
}

/// SPMD body of the boundary-diffusion repair: only the boundary sweep is
/// charged and only *moved* vertices cost wire traffic — the reason this is
/// the cheap path of the portfolio. `precomputed` works as in
/// [`sfc_body`].
#[allow(clippy::too_many_arguments)]
pub fn sfc_diffuse_body(
    comm: &mut Comm,
    keys: &[u64],
    vwgt: &[u64],
    owner: &[u32],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
    precomputed: Option<&[u32]>,
) -> Vec<u32> {
    let rank = comm.rank();
    let part = resolve_replicated(precomputed, || sfc_diffuse(keys, vwgt, prev, nparts, caps));
    // Boundary sweeps touch each local vertex a handful of times; charge a
    // quarter of the full-sort rate.
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    charge(comm, n_local.div_ceil(4), vertex_units);
    exchange_and_check(
        comm,
        vwgt,
        None,
        owner,
        &part,
        Some(prev),
        nparts,
        TRIPLE_BYTES,
    );
    part
}

/// Dual-constraint SPMD body of the boundary-diffusion repair: only moved
/// vertices cost (wider) wire traffic, as in [`sfc_diffuse_body`]. A
/// uniform second weight vector delegates to the single-constraint body.
#[allow(clippy::too_many_arguments)]
pub fn sfc_diffuse_body_dual(
    comm: &mut Comm,
    keys: &[u64],
    w1: &[u64],
    w2: &[u64],
    owner: &[u32],
    prev: &[u32],
    nparts: usize,
    caps: &[f64],
    vertex_units: f64,
    precomputed: Option<&[u32]>,
) -> Vec<u32> {
    if dual_uniform(w2) {
        return sfc_diffuse_body(
            comm,
            keys,
            w1,
            owner,
            prev,
            nparts,
            caps,
            vertex_units,
            precomputed,
        );
    }
    let rank = comm.rank();
    let part = resolve_replicated(precomputed, || {
        sfc_diffuse_dual(keys, w1, w2, prev, nparts, caps)
    });
    let n_local = owner.iter().filter(|&&o| o as usize == rank).count();
    charge(comm, n_local.div_ceil(4), vertex_units);
    exchange_and_check(
        comm,
        w1,
        Some(w2),
        owner,
        &part,
        Some(prev),
        nparts,
        DUAL_TRIPLE_BYTES,
    );
    part
}

/// Standalone harness for [`sfc_body`] (full partition) or
/// [`sfc_diffuse_body`] (when `prev` is given): its own `nranks`-rank SPMD
/// session, mirroring [`crate::repartition_distributed`]. Panics if ranks
/// disagree on the result.
#[allow(clippy::too_many_arguments)]
pub fn sfc_distributed(
    keys: &[u64],
    vwgt: &[u64],
    owner: &[u32],
    prev: Option<&[u32]>,
    nparts: usize,
    caps: &[f64],
    nranks: usize,
    model: MachineModel,
    vertex_units: f64,
) -> DistPartition {
    // The replicated arithmetic runs once here instead of once per rank.
    let hoisted = match prev {
        Some(prev) => sfc_diffuse(keys, vwgt, prev, nparts, caps),
        None => sfc_partition(keys, vwgt, nparts, caps),
    };
    let hoisted = &hoisted;
    let results = spmd(nranks, model, move |comm| {
        comm.phase("partition", |c| match prev {
            Some(prev) => sfc_diffuse_body(
                c,
                keys,
                vwgt,
                owner,
                prev,
                nparts,
                caps,
                vertex_units,
                Some(hoisted),
            ),
            None => sfc_body(
                c,
                keys,
                vwgt,
                owner,
                nparts,
                caps,
                vertex_units,
                Some(hoisted),
            ),
        })
    });
    let part = results[0].value.clone();
    for r in &results {
        assert_eq!(r.value, part, "rank {} disagrees on the partition", r.rank);
    }
    DistPartition {
        part,
        makespan: makespan(&results),
        trace: TraceLog::from_results(&results),
    }
}

/// Effective (capacity-weighted) imbalance of a partition given per-vertex
/// weights — the quantity diffusion is contracted never to increase.
pub fn sfc_effective_imbalance(vwgt: &[u64], part: &[u32], nparts: usize, caps: &[f64]) -> f64 {
    let mut w = vec![0u64; nparts];
    for v in 0..part.len() {
        w[part[v] as usize] += vwgt[v];
    }
    imbalance_weighted(&w, caps)
}

/// Dual-constraint effective imbalance of a partition: the worse of the two
/// per-constraint capacity-weighted imbalances — the quantity
/// [`sfc_diffuse_dual`] is contracted never to increase.
pub fn sfc_effective_imbalance_dual(
    w1: &[u64],
    w2: &[u64],
    part: &[u32],
    nparts: usize,
    caps: &[f64],
) -> f64 {
    imbalance_dual(
        &weights_of(w1, part, nparts),
        &weights_of(w2, part, nparts),
        caps,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic keys: already curve-ordered by index.
    fn line_keys(n: usize) -> Vec<u64> {
        (0..n as u64).collect()
    }

    #[test]
    fn split_respects_capacity_ceilings() {
        let keys = line_keys(100);
        let vwgt = vec![3u64; 100];
        let caps = vec![1.0, 2.0, 1.0, 4.0];
        let part = sfc_split(&keys, &vwgt, 4, &caps);
        let mut w = [0u64; 4];
        for v in 0..100 {
            w[part[v] as usize] += vwgt[v];
        }
        let total: u64 = vwgt.iter().sum();
        let wmax = *vwgt.iter().max().unwrap();
        for (p, f) in cap_fractions(&caps, 4).iter().enumerate() {
            assert!(
                w[p] as f64 <= total as f64 * f + wmax as f64,
                "part {p} weight {} exceeds share {} + one vertex",
                w[p],
                total as f64 * f
            );
        }
    }

    #[test]
    fn split_ranges_are_contiguous_in_curve_order() {
        let keys: Vec<u64> = (0..64u64).rev().collect(); // reversed labels
        let vwgt = vec![1u64; 64];
        let part = sfc_split(&keys, &vwgt, 4, &[1.0; 4]);
        let order = sfc_order(&keys);
        let parts_in_order: Vec<u32> = order.iter().map(|&v| part[v as usize]).collect();
        assert!(
            parts_in_order.windows(2).all(|w| w[0] <= w[1]),
            "ranges not contiguous: {parts_in_order:?}"
        );
    }

    #[test]
    fn diffusion_repairs_a_shifted_boundary() {
        let keys = line_keys(40);
        let vwgt = vec![1u64; 40];
        // Badly cut: 30/10 instead of 20/20.
        let prev: Vec<u32> = (0..40).map(|v| u32::from(v >= 30)).collect();
        let caps = [1.0, 1.0];
        let before = sfc_effective_imbalance(&vwgt, &prev, 2, &caps);
        let part = sfc_diffuse(&keys, &vwgt, &prev, 2, &caps);
        let after = sfc_effective_imbalance(&vwgt, &part, 2, &caps);
        assert!(
            after < before,
            "diffusion failed to repair: {before} -> {after}"
        );
        assert!(
            (after - 1.0).abs() < 1e-9,
            "perfectly splittable: got {after}"
        );
    }

    #[test]
    fn dual_diffusion_repairs_the_binding_constraint() {
        let keys = line_keys(60);
        let w1 = vec![1u64; 60];
        // Second constraint interleaved along the curve (every 6th vertex),
        // so a contiguous split balancing both constraints exists.
        let w2: Vec<u64> = (0..60u64)
            .map(|v| if v % 6 == 0 { 20 } else { 1 })
            .collect();
        let caps = [1.0, 1.0];
        // Badly cut seed: 40/20 instead of 30/30 — both constraints skewed.
        let prev: Vec<u32> = (0..60).map(|v| u32::from(v >= 40)).collect();
        let before = sfc_effective_imbalance_dual(&w1, &w2, &prev, 2, &caps);
        assert!(before > 1.3, "seed should be imbalanced: {before}");
        let part = sfc_diffuse_dual(&keys, &w1, &w2, &prev, 2, &caps);
        let after = sfc_effective_imbalance_dual(&w1, &w2, &part, 2, &caps);
        assert!(after < before, "dual diffusion failed: {before} -> {after}");
        assert!(after < 1.1, "binding constraint still loose: {after}");
    }

    #[test]
    fn dual_kernels_reduce_to_single_when_uniform() {
        let keys: Vec<u64> = (0..80u64).map(|v| v.wrapping_mul(0x2545) % 4096).collect();
        let w1: Vec<u64> = (0..80u64).map(|v| 1 + v % 5).collect();
        let caps = [1.0, 2.0, 1.0];
        let prev = sfc_split(&keys, &w1, 3, &caps);
        for c in [1u64, 9] {
            let w2 = vec![c; 80];
            assert_eq!(
                sfc_split_dual(&keys, &w1, &w2, 3, &caps),
                sfc_split(&keys, &w1, 3, &caps)
            );
            assert_eq!(
                sfc_diffuse_dual(&keys, &w1, &w2, &prev, 3, &caps),
                sfc_diffuse(&keys, &w1, &prev, 3, &caps)
            );
            assert_eq!(
                sfc_partition_dual(&keys, &w1, &w2, 3, &caps),
                sfc_partition(&keys, &w1, 3, &caps)
            );
        }
    }

    #[test]
    fn dual_bodies_match_serial_and_are_model_invariant() {
        let n = 240;
        let keys = line_keys(n);
        let w1: Vec<u64> = (0..n as u64).map(|v| 1 + v % 4).collect();
        let w2: Vec<u64> = (0..n as u64)
            .map(|v| if v % 29 == 0 { 40 } else { 1 })
            .collect();
        let caps = vec![1.0; 4];
        let owner: Vec<u32> = (0..n).map(|v| (v * 4 / n) as u32).collect();
        let serial = sfc_partition_dual(&keys, &w1, &w2, 4, &caps);
        let prev = sfc_split_dual(&keys, &w1, &w2, 4, &[2.0, 1.0, 1.0, 1.0]);
        let serial_diff = sfc_diffuse_dual(&keys, &w1, &w2, &prev, 4, &caps);
        for model in [MachineModel::sp2(), MachineModel::zero()] {
            let results = spmd(4, model, |comm| {
                comm.phase("partition", |c| {
                    let full = sfc_body_dual(c, &keys, &w1, &w2, &owner, 4, &caps, 16.0, None);
                    let diff = sfc_diffuse_body_dual(
                        c, &keys, &w1, &w2, &owner, &prev, 4, &caps, 16.0, None,
                    );
                    (full, diff)
                })
            });
            for r in &results {
                assert_eq!(
                    r.value.0, serial,
                    "full dual body diverged on rank {}",
                    r.rank
                );
                assert_eq!(
                    r.value.1, serial_diff,
                    "dual diffusion body diverged on rank {}",
                    r.rank
                );
            }
        }
    }

    #[test]
    fn distributed_full_sfc_matches_serial_and_is_model_invariant() {
        let n = 500;
        let keys: Vec<u64> = (0..n as u64)
            .map(|v| v.wrapping_mul(0x9E37) % 8192)
            .collect();
        let vwgt: Vec<u64> = (0..n as u64).map(|v| 1 + v % 7).collect();
        let caps = vec![1.0; 8];
        let owner: Vec<u32> = (0..n).map(|v| (v * 4 / n) as u32).collect();
        let serial = sfc_partition(&keys, &vwgt, 8, &caps);
        let a = sfc_distributed(
            &keys,
            &vwgt,
            &owner,
            None,
            8,
            &caps,
            4,
            MachineModel::sp2(),
            16.0,
        );
        let b = sfc_distributed(
            &keys,
            &vwgt,
            &owner,
            None,
            8,
            &caps,
            4,
            MachineModel::zero(),
            0.0,
        );
        assert_eq!(a.part, serial, "SPMD body diverged from serial");
        assert_eq!(a.part, b.part, "partition depends on the machine model");
        assert!(a.makespan > b.makespan, "sp2 run should cost virtual time");
    }

    #[test]
    fn distributed_diffusion_matches_serial() {
        let n = 300;
        let keys = line_keys(n);
        let vwgt: Vec<u64> = (0..n as u64).map(|v| 1 + v % 3).collect();
        let caps = vec![1.0; 4];
        let owner: Vec<u32> = (0..n).map(|v| (v * 4 / n) as u32).collect();
        let prev = sfc_split(&keys, &vwgt, 4, &[2.0, 1.0, 1.0, 1.0]); // skewed seed
        let serial = sfc_diffuse(&keys, &vwgt, &prev, 4, &caps);
        let d = sfc_distributed(
            &keys,
            &vwgt,
            &owner,
            Some(&prev),
            4,
            &caps,
            4,
            MachineModel::sp2(),
            16.0,
        );
        assert_eq!(d.part, serial, "diffusion SPMD body diverged from serial");
    }
}
