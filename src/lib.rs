//! # plum-workspace — facade for the PLUM reproduction
//!
//! Re-exports every subsystem of the reproduction of Oliker & Biswas,
//! *Efficient Load Balancing and Data Remapping for Adaptive Grid
//! Calculations* (SPAA 1997) under one roof, and hosts the runnable
//! examples (see `examples/`).
//!
//! Crate map:
//!
//! * [`mesh`] — edge-based tetrahedral meshes, generators, dual graph;
//! * [`adapt`] — 3D_TAG-style marking / subdivision / coarsening;
//! * [`partition`] — multilevel k-way (re)partitioning;
//! * [`reassign`] — similarity matrix + MWBG/BMCM mappers;
//! * [`remap`] — gain/cost model and migration codec;
//! * [`solver`] — synthetic rotor-flow solver and error indicator;
//! * [`parsim`] — SPMD machine simulator with virtual time;
//! * [`core`] — the integrated PLUM framework (Fig. 1 loop).

pub use plum_adapt as adapt;
pub use plum_core as core;
pub use plum_mesh as mesh;
pub use plum_parsim as parsim;
pub use plum_partition as partition;
pub use plum_reassign as reassign;
pub use plum_remap as remap;
pub use plum_solver as solver;
