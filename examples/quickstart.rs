//! Quickstart: one adaption + load-balancing cycle on a small mesh.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use plum_core::{Plum, PlumConfig};
use plum_mesh::generate::unit_box_mesh;
use plum_solver::WaveField;

fn main() {
    // An initial tetrahedral mesh of the unit box (6·8³ = 3072 elements)
    // and a rotating wave field that the error indicator will chase.
    let mesh = unit_box_mesh(8);
    println!("initial mesh: {:?}", mesh.counts());

    // Eight virtual processors with SP2-like cost constants.
    let cfg = PlumConfig::new(8);
    let mut plum = Plum::new(mesh, WaveField::unit_box(), cfg);

    // One cycle of Fig. 1: solve → mark → predict → balance → remap →
    // subdivide. Target roughly a third of the edges, as in Real_2.
    let report = plum.adaption_cycle(0.33, 0.1);

    println!("after one cycle: {:?}", report.counts);
    println!("mesh growth factor G = {:.3}", report.growth);
    println!(
        "marking took {} propagation sweep(s), {:.3} ms",
        report.marking_sweeps,
        report.times.marking * 1e3
    );
    println!(
        "load balancer: repartitioned={} accepted={} (imbalance {:.3} → {:.3})",
        report.decision.repartitioned,
        report.decision.accepted,
        report.decision.imbalance_old,
        report.decision.imbalance_new
    );
    if let Some(m) = &report.migration {
        println!(
            "remapped {} elements in {} messages ({} words) in {:.3} ms",
            m.elems_moved,
            m.msgs,
            m.words_moved,
            m.time * 1e3
        );
    }
    println!(
        "phase times (virtual ms): solver={:.1} marking={:.2} partition={:.1} \
         reassign={:.3} remap={:.2} subdivide={:.2}",
        report.times.solver * 1e3,
        report.times.marking * 1e3,
        report.times.partition * 1e3,
        report.times.reassign * 1e3,
        report.times.remap * 1e3,
        report.times.subdivide * 1e3
    );
    println!(
        "solver max-load without balancing: {}, with balancing: {} (gain {:.2}×)",
        report.wmax_unbalanced,
        report.wmax_balanced,
        report.wmax_unbalanced as f64 / report.wmax_balanced as f64
    );
}
