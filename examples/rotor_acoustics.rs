//! Rotor acoustics scenario: repeated adaption cycles on a cylindrical
//! wedge domain (a fraction of the rotor azimuth, as in the paper's UH-1H
//! hover computation), with the high-gradient region rotating with the
//! blade. Prints the per-cycle execution-time anatomy — the living version
//! of the paper's Fig. 6.
//!
//! ```text
//! cargo run --release --example rotor_acoustics
//! ```

use plum_core::{Plum, PlumConfig};
use plum_mesh::generate::{rotor_mesh, RotorDomain};
use plum_solver::WaveField;

fn main() {
    let dom = RotorDomain::default();
    let mesh = rotor_mesh(14, 20, 8, dom);
    println!(
        "rotor wedge mesh: {} elements, {} vertices, {} edges",
        mesh.n_elems(),
        mesh.n_verts(),
        mesh.n_edges()
    );

    let mut cfg = PlumConfig::new(16);
    cfg.imbalance_trigger = 1.10;
    let mut plum = Plum::new(mesh, WaveField::rotor(), cfg);

    println!(
        "{:>5} {:>9} {:>7} {:>9} {:>9} {:>9} {:>9} {:>6} {:>8}",
        "cycle", "elems", "G", "solver", "adaption", "partition", "remap", "accept", "imbal"
    );
    for cycle in 0..5 {
        // The blade rotates between adaptions; refine ~10% of edges each time.
        let r = plum.adaption_cycle(0.10, 0.4);
        println!(
            "{:>5} {:>9} {:>7.3} {:>8.2}s {:>8.3}s {:>8.3}s {:>8.3}s {:>6} {:>8.3}",
            cycle,
            r.counts.elements,
            r.growth,
            r.times.solver,
            r.times.adaption(),
            r.times.partition,
            r.times.remap,
            r.decision.accepted,
            r.decision.imbalance_new,
        );
    }

    let (wcomp, wremap) = plum.am.weights();
    let total_leaves: u64 = wcomp.iter().sum();
    let total_nodes: u64 = wremap.iter().sum();
    println!(
        "\nfinal: {} leaf elements across {} refinement-tree nodes (max level {})",
        total_leaves,
        total_nodes,
        plum.am.max_level()
    );
    plum.am.validate();
    println!("mesh validated: incidence, forest, and conformity all consistent");
}
