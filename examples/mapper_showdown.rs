//! Mapper showdown: the three processor-reassignment algorithms head to
//! head on similarity matrices produced by a real repartitioning of a real
//! adapted mesh — a miniature of the paper's Table 2.
//!
//! ```text
//! cargo run --release --example mapper_showdown
//! ```

use std::time::Instant;

use plum_adapt::{AdaptiveMesh, EdgeMarks};
use plum_mesh::generate::unit_box_mesh;
use plum_mesh::DualGraph;
use plum_partition::{partition_kway, repartition_kway, Graph, PartitionConfig};
use plum_reassign::{
    bottleneck_value, greedy_mwbg, optimal_bmcm, optimal_mwbg, remap_stats, SimilarityMatrix,
};

fn main() {
    // Build an adapted mesh: refine a corner so the weights drift.
    let mut am = AdaptiveMesh::new(unit_box_mesh(8));
    let mut dual = DualGraph::build(&am.mesh);
    let mut marks = EdgeMarks::new(&am.mesh);
    for e in am.mesh.edges().collect::<Vec<_>>() {
        let mp = am.mesh.edge_midpoint(e);
        if mp[0] + mp[1] < 0.8 {
            marks.mark(e);
        }
    }
    am.upgrade_to_fixpoint(&mut marks);
    am.refine(&marks, &mut []);
    let (wcomp, wremap) = am.weights();
    dual.wcomp = wcomp;
    dual.wremap = wremap;

    println!(
        "{:>4} | {:>12} {:>10} {:>12} | {:>12} {:>10} {:>12} | {:>12} {:>10} {:>12}",
        "P",
        "opt elems",
        "opt max",
        "opt time",
        "heu elems",
        "heu max",
        "heu time",
        "bmcm elems",
        "bmcm max",
        "bmcm time"
    );
    for p in [2usize, 4, 8, 16, 32] {
        // Old partition: balanced for UNIT weights (i.e., pre-adaption).
        let unit_graph = Graph::from_csr(dual.xadj.clone(), dual.adjncy.clone(), vec![1; dual.n()]);
        let old = partition_kway(&unit_graph, &PartitionConfig::new(p));
        // New partition: balanced for the adapted weights, seeded from old.
        let graph = Graph::from_csr(dual.xadj.clone(), dual.adjncy.clone(), dual.wcomp.clone());
        let new = repartition_kway(&graph, &PartitionConfig::new(p), &old);
        let sm = SimilarityMatrix::from_assignments(&dual.wremap, &old, &new, p, p);

        let time = |f: &dyn Fn() -> plum_reassign::Assignment| {
            let t0 = Instant::now();
            let a = f();
            (a, t0.elapsed().as_secs_f64())
        };
        let (opt, t_opt) = time(&|| optimal_mwbg(&sm));
        let (heu, t_heu) = time(&|| greedy_mwbg(&sm));
        let (bmc, t_bmc) = time(&|| optimal_bmcm(&sm, 1.0, 1.0));

        let so = remap_stats(&sm, &opt);
        let sh = remap_stats(&sm, &heu);
        let sb = remap_stats(&sm, &bmc);
        println!(
            "{:>4} | {:>12} {:>10} {:>10.1}µs | {:>12} {:>10} {:>10.1}µs | {:>12} {:>10} {:>10.1}µs",
            p,
            so.total_elems,
            so.max_elems,
            t_opt * 1e6,
            sh.total_elems,
            sh.max_elems,
            t_heu * 1e6,
            sb.total_elems,
            sb.max_elems,
            t_bmc * 1e6,
        );
        // Structural guarantees from the paper.
        assert!(sm.objective(&opt.proc_of_part) >= sm.objective(&heu.proc_of_part));
        assert!(2 * sm.objective(&heu.proc_of_part) >= sm.objective(&opt.proc_of_part));
        assert!(
            bottleneck_value(&sm, &bmc, 1.0, 1.0) <= bottleneck_value(&sm, &opt, 1.0, 1.0) + 1e-9
        );
    }
    println!("\nall Theorem-1 and BMCM-optimality invariants held");
}
