//! Visualization export: run a few adaption cycles, then perform the
//! finalization phase (global numbering + host gather) and write the global
//! mesh with partition ids and the flow solution as legacy VTK — the
//! post-processing path §3 motivates the finalization phase with.
//!
//! ```text
//! cargo run --release --example visualize
//! paraview /tmp/plum_adapted.vtk   # or any VTK viewer
//! ```

use std::fs::File;
use std::io::BufWriter;

use plum_core::{distribute, finalize, Plum, PlumConfig};
use plum_mesh::generate::unit_box_mesh;
use plum_mesh::vtk::{quality_stats, write_vtk};
use plum_solver::WaveField;

fn main() -> std::io::Result<()> {
    let mut plum = Plum::new(unit_box_mesh(6), WaveField::unit_box(), PlumConfig::new(8));
    for _ in 0..2 {
        plum.adaption_cycle(0.12, 0.4);
    }
    plum.am.validate();

    let q = quality_stats(&plum.am.mesh);
    println!(
        "adapted mesh: {} elements, quality min/mean/max = {:.3}/{:.3}/{:.3}, slivers {:.1}%",
        plum.am.mesh.n_elems(),
        q.min,
        q.mean,
        q.max,
        q.sliver_fraction * 100.0
    );

    // Write the adapted mesh with per-element partition id and per-vertex
    // density.
    let path = std::env::temp_dir().join("plum_adapted.vtk");
    {
        let mut w = BufWriter::new(File::create(&path)?);
        let am = &plum.am;
        let proc_of_root = &plum.proc_of_root;
        let field = &plum.field;
        write_vtk(
            &mut w,
            &am.mesh,
            &[
                ("partition", &|e| {
                    proc_of_root[am.root_of_elem(e) as usize] as f64
                }),
                ("level", &|e| am.level_of_elem(e) as f64),
            ],
            &[("density", &|v| field.comp(v, 0))],
        )?;
    }
    println!("wrote {}", path.display());

    // Exercise the distributed initialization + finalization on the INITIAL
    // mesh (the snapshot/restart path): distribute by the current partition
    // of the dual graph, then gather back and export.
    let initial = unit_box_mesh(6);
    let mut part = vec![0u32; initial.elem_slots()];
    for (i, e) in initial.elems().enumerate() {
        part[e.idx()] = plum.proc_of_root[i];
    }
    let dm = distribute(&initial, &part, 8);
    let fin = finalize(&dm, plum.cfg.machine);
    fin.mesh.validate();
    println!(
        "finalization gathered {} elements from 8 ranks in {:.3} virtual ms",
        fin.mesh.n_elems(),
        fin.time * 1e3
    );
    let snap = std::env::temp_dir().join("plum_initial_partition.vtk");
    {
        let mut w = BufWriter::new(File::create(&snap)?);
        let part = &part;
        let initial_ref = &initial;
        write_vtk(
            &mut w,
            initial_ref,
            &[("partition", &|e| part[e.idx()] as f64)],
            &[],
        )?;
    }
    println!("wrote {}", snap.display());
    Ok(())
}
