//! Shock tracking with refinement *and* coarsening: the mesh follows a
//! moving wave front, refining ahead of it and coarsening behind it, so the
//! element count stays bounded while the feature stays resolved — the
//! unsteady-problem workload that motivates dynamic load balancing in the
//! paper's introduction.
//!
//! ```text
//! cargo run --release --example shock_tracking
//! ```

use plum_adapt::{AdaptiveMesh, EdgeMarks};
use plum_mesh::generate::unit_box_mesh;
use plum_mesh::VertexField;
use plum_solver::{edge_error_indicator, initialize_solution, WaveField, NCOMP};

fn main() {
    let mut am = AdaptiveMesh::new(unit_box_mesh(5));
    let wave = WaveField::unit_box();
    let mut field = VertexField::new(NCOMP, am.mesh.vert_slots());

    println!(
        "{:>4} {:>7} {:>9} {:>9} {:>9} {:>10}",
        "step", "time", "elements", "refined", "coarsened", "max level"
    );
    let mut t = 0.0;
    for step in 0..8 {
        t += 0.35;
        // Track the analytic field exactly (in a real run the solver would
        // converge here; see the quickstart/rotor examples for that path).
        initialize_solution(&am.mesh, &mut field, &wave, t);
        let error = edge_error_indicator(&am.mesh, &field);

        // Coarsen where the error is small *and* the mesh is refined…
        let mut low = EdgeMarks::new(&am.mesh);
        let mut vals: Vec<f64> = am.mesh.edges().map(|e| error[e.idx()]).collect();
        vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let lo_threshold = vals[vals.len() / 2];
        for e in am.mesh.edges() {
            if error[e.idx()] < lo_threshold {
                low.mark(e);
            }
        }
        let cstats = am.coarsen(&low, std::slice::from_mut(&mut field));

        // …then refine where it is large (recompute on the coarsened mesh).
        initialize_solution(&am.mesh, &mut field, &wave, t);
        let error = edge_error_indicator(&am.mesh, &field);
        let mut vals: Vec<f64> = am.mesh.edges().map(|e| error[e.idx()]).collect();
        vals.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let hi_threshold = vals[(vals.len() as f64 * 0.95) as usize];
        let mut marks = EdgeMarks::new(&am.mesh);
        for e in am.mesh.edges() {
            if error[e.idx()] > hi_threshold {
                marks.mark(e);
            }
        }
        am.upgrade_to_fixpoint(&mut marks);
        let rstats = am.refine(&marks, std::slice::from_mut(&mut field));

        am.validate();
        println!(
            "{:>4} {:>7.2} {:>9} {:>9} {:>9} {:>10}",
            step,
            t,
            am.mesh.n_elems(),
            rstats.elems_created,
            cstats.elems_removed,
            am.max_level()
        );
    }

    // The fine elements should cluster near the blade tip: compare element
    // density in a ball around the tip against the global average.
    let tip = wave.tip_position(t);
    let near = am
        .mesh
        .elems()
        .filter(|&e| {
            let c = plum_mesh::geometry::elem_centroid(&am.mesh, e);
            (c[0] - tip[0]).powi(2) + (c[1] - tip[1]).powi(2) + (c[2] - tip[2]).powi(2) < 0.04
        })
        .count();
    println!(
        "\n{} elements at final time (max level {}), {} of them within 0.2 of the tip at \
         ({:.2},{:.2},{:.2})",
        am.mesh.n_elems(),
        am.max_level(),
        near,
        tip[0],
        tip[1],
        tip[2]
    );
}
