//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access, so this vendored crate
//! provides the subset of the proptest API the workspace actually uses:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies (`0u64..1000`, `0.0f64..10.0`, ...), [`any`],
//!   [`collection::vec`], and [`Strategy::prop_map`].
//!
//! Cases are generated from a deterministic splitmix64 stream seeded per
//! test function, so failures reproduce exactly. There is no shrinking: a
//! failing case reports its inputs via the assertion message instead.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The usual `use proptest::prelude::*;` imports.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// arguments are drawn from strategies: `fn f(x in 0u64..10, ys in ...)`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest case {case} of {} failed: {e}\ninputs: {}",
                        stringify!($name),
                        [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),*].join(", "),
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Property assertion: on failure the enclosing case returns an error
/// (reported with the generated inputs).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}
