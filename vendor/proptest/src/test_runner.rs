//! Configuration, deterministic PRNG, and the case-failure error type.

use std::fmt;

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error returned by `prop_assert!` on a failing case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed case with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic splitmix64 generator. Seeded from the test function name so
/// different tests see different streams, but every run of the same test sees
/// the same sequence (failures always reproduce).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Stream for the named test function.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, mixed into a non-zero seed.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            state: h ^ 0x9e3779b97f4a7c15,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform u64 in `[lo, hi)`. `hi` must exceed `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // span sizes property tests use.
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        let mut c = TestRng::for_test("u");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = r.range_u64(10, 17);
            assert!((10..17).contains(&v));
        }
    }
}
