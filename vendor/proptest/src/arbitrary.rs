//! `any::<T>()` — the canonical whole-domain strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (full domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, broad magnitude range.
        (rng.next_f64() - 0.5) * 2.0e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_values() {
        let mut rng = TestRng::for_test("any");
        let s = any::<u64>();
        let vals: Vec<u64> = (0..16).map(|_| s.generate(&mut rng)).collect();
        let first = vals[0];
        assert!(vals.iter().any(|&v| v != first));
    }
}
