//! Collection strategies: `collection::vec(elem, size)`.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// A strategy producing `Vec`s of `elem`-generated values with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::for_test("vec");
        let fixed = vec(0u64..5, 4);
        let ranged = vec(0u64..5, 1..7);
        for _ in 0..200 {
            assert_eq!(fixed.generate(&mut rng).len(), 4);
            let l = ranged.generate(&mut rng).len();
            assert!((1..7).contains(&l));
        }
    }

    #[test]
    fn nested_vec_of_vec() {
        let mut rng = TestRng::for_test("vv");
        let s = vec(vec(0u64..1000, 3), 3);
        let m = s.generate(&mut rng);
        assert_eq!(m.len(), 3);
        assert!(m.iter().all(|row| row.len() == 3));
    }
}
