//! The [`Strategy`] trait and the range / mapped strategies.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draw one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// A strategy mapped through a function (see [`Strategy::prop_map`]).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// A constant strategy (always the same value).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$idx:tt),*) => {
        impl<$($s: Strategy),*> Strategy for ($($s,)*) {
            type Value = ($($s::Value,)*);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let a = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&a));
            let b = (1usize..12).generate(&mut rng);
            assert!((1..12).contains(&b));
            let c = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&c));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::for_test("map");
        let s = (0u64..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
