//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no network access, so this vendored crate
//! implements the subset of the criterion API the workspace's bench targets
//! use — `criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `b.iter` / `b.iter_batched`, and
//! `BatchSize` — with a simple measurement loop: warm up once, run a fixed
//! number of timed samples, report the median. It keeps `cargo bench`
//! working and the bench sources compiling; it makes no statistical claims.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batches are sized in [`Bencher::iter_batched`]. Only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measure one benchmark routine.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let median = b.median();
        println!("  {}/{}: median {:?}", self.name, id, median);
        self
    }

    /// Finish the group (printing is incremental; this is a no-op).
    pub fn finish(&mut self) {}
}

/// Times closures passed to [`Bencher::iter`] / [`Bencher::iter_batched`].
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        black_box(routine());
        self.samples.push(t0.elapsed());
    }

    /// Time `routine` on a fresh `setup()` input (setup excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        self.samples.push(t0.elapsed());
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2]
    }
}

/// Group benchmark functions under one name, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut runs = 0;
        group.sample_size(3).bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_uses_fresh_input() {
        let mut b = Bencher {
            samples: Vec::new(),
        };
        b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::LargeInput);
        assert_eq!(b.samples.len(), 1);
    }
}
