//! Differential battery: the distributed multilevel repartitioner versus the
//! retained serial reference kernel, at P ∈ {2, 8, 64} on a quick-scale
//! Fig-6 mesh.
//!
//! Two regimes are pinned. On the exact-serial path (coarsest graph = input
//! graph) the distributed kernel gathers the problem to rank 0 and runs the
//! very same serial kernel, so the result must be *bit-identical*. On the
//! genuinely multilevel path the two kernels take discretely different
//! matching/refinement decisions, so the contract is qualitative: edge cut
//! within 10% of the serial result and imbalance no worse than the serial
//! result plus a small epsilon.

use plum_mesh::generate::{box_dims_for_elements, box_mesh};
use plum_mesh::{DualGraph, SfcCurve};
use plum_parsim::{check_protocol, MachineModel};
use plum_partition::{
    diffusion2_balance, diffusion2_distributed, imbalance_weighted, knapsack_distributed,
    knapsack_partition, part_weights, partition_kway, quality, repartition_distributed,
    repartition_kway_weighted, sfc_diffuse, sfc_distributed, sfc_partition, voronoi_balance,
    voronoi_distributed, voronoi_partition, Graph, PartitionConfig,
};

const PROC_COUNTS: [usize; 3] = [2, 8, 64];

/// Work units charged per locally-matched vertex; any positive value — the
/// partition result is machine-model independent by construction.
const VERTEX_UNITS: f64 = 16.0;

/// Quick-scale Fig-6 dual graph (~6000 elements) with a deterministic
/// non-uniform weighting: a contiguous band of elements is 8× heavier, as if
/// a refinement wave had just passed through. The uniform seed partition is
/// therefore imbalanced — exactly the state the engine repartitions from.
fn fig6_quick_graph() -> Graph<'static> {
    fig6_quick_graph_with_keys().0
}

/// Same graph plus the Hilbert keys of its elements' centroids — the inputs
/// the portfolio's geometric methods consume.
fn fig6_quick_graph_with_keys() -> (Graph<'static>, Vec<u64>) {
    let (nx, ny, nz) = box_dims_for_elements(6_000);
    let mesh = box_mesh(nx, ny, nz, [0.0; 3], [1.0; 3]);
    let dual = DualGraph::build(&mesh);
    let keys = plum_mesh::sfc::element_keys(&mesh, &dual.elem_of, SfcCurve::Hilbert);
    let mut w = dual.wcomp.clone();
    let n = w.len();
    for x in w.iter_mut().take(n / 5) {
        *x *= 8;
    }
    (
        Graph::from_csr(dual.xadj.clone(), dual.adjncy.clone(), w),
        keys,
    )
}

/// The "previous" partition: computed on uniform weights, like the partition
/// the engine held before the refinement wave changed the weights.
fn seed_partition(g: &Graph, nparts: usize) -> Vec<u32> {
    let uniform = Graph::from_csr(g.xadj.to_vec(), g.adjncy.to_vec(), vec![1; g.n()]);
    partition_kway(&uniform, &PartitionConfig::new(nparts))
}

#[test]
fn exact_path_is_bit_identical_to_serial_at_all_proc_counts() {
    let g = fig6_quick_graph();
    for &p in &PROC_COUNTS {
        let mut cfg = PartitionConfig::new(p);
        // Stop coarsening immediately: the coarsest graph is the input graph,
        // so the distributed kernel must reproduce the serial kernel exactly.
        cfg.coarsen_to = g.n();
        let prev = seed_partition(&g, p);
        let caps = vec![1.0; p];
        let serial = repartition_kway_weighted(&g, &cfg, &prev, &caps);
        let dist = repartition_distributed(
            &g,
            &prev,
            Some(&prev),
            &cfg,
            &caps,
            p,
            MachineModel::sp2(),
            VERTEX_UNITS,
        );
        assert_eq!(dist.part, serial, "P={p}: exact path diverged from serial");
        assert!(dist.makespan > 0.0, "P={p}: partitioning took no time");
    }
}

#[test]
fn multilevel_cut_and_balance_track_the_serial_reference() {
    let g = fig6_quick_graph();
    for &p in &PROC_COUNTS {
        let cfg = PartitionConfig::new(p);
        let prev = seed_partition(&g, p);
        let caps = vec![1.0; p];
        let serial = repartition_kway_weighted(&g, &cfg, &prev, &caps);
        let dist = repartition_distributed(
            &g,
            &prev,
            Some(&prev),
            &cfg,
            &caps,
            p,
            MachineModel::sp2(),
            VERTEX_UNITS,
        );
        let qs = quality(&g, &serial, p);
        let qd = quality(&g, &dist.part, p);
        eprintln!(
            "P={p}: serial cut {} imb {:.4} | distributed cut {} imb {:.4}",
            qs.cut, qs.imbalance, qd.cut, qd.imbalance
        );
        assert!(
            qd.cut as f64 <= qs.cut as f64 * 1.10,
            "P={p}: distributed cut {} exceeds serial {} by more than 10%",
            qd.cut,
            qs.cut
        );
        assert!(
            qd.imbalance <= qs.imbalance.max(cfg.imbalance_tol) + 0.05,
            "P={p}: distributed imbalance {:.4} vs serial {:.4} (tol {})",
            qd.imbalance,
            qs.imbalance,
            cfg.imbalance_tol
        );
    }
}

#[test]
fn multilevel_result_is_deterministic_and_machine_independent() {
    let g = fig6_quick_graph();
    let p = 8;
    let cfg = PartitionConfig::new(p);
    let prev = seed_partition(&g, p);
    let caps = vec![1.0; p];
    let a = repartition_distributed(
        &g,
        &prev,
        Some(&prev),
        &cfg,
        &caps,
        p,
        MachineModel::sp2(),
        VERTEX_UNITS,
    );
    // Different machine model, different compute charge: same partition.
    let b = repartition_distributed(
        &g,
        &prev,
        Some(&prev),
        &cfg,
        &caps,
        p,
        MachineModel::zero(),
        0.0,
    );
    assert_eq!(a.part, b.part, "partition depends on the machine model");
    assert!(a.makespan > b.makespan, "sp2 run should cost virtual time");
}

#[test]
fn weighted_capacities_shift_load_and_respect_ceilings() {
    let g = fig6_quick_graph();
    let p = 8;
    let cfg = PartitionConfig::new(p);
    let prev = seed_partition(&g, p);
    // Two double-capacity processors, as after a chaos slowdown elsewhere.
    let caps: Vec<f64> = (0..p).map(|r| if r < 2 { 2.0 } else { 1.0 }).collect();
    let dist = repartition_distributed(
        &g,
        &prev,
        Some(&prev),
        &cfg,
        &caps,
        p,
        MachineModel::sp2(),
        VERTEX_UNITS,
    );
    assert_eq!(dist.part.len(), g.n(), "every vertex assigned exactly once");
    assert!(dist.part.iter().all(|&q| (q as usize) < p));
    let w = part_weights(&g, &dist.part, p);
    let imb = imbalance_weighted(&w, &caps);
    assert!(
        imb <= cfg.imbalance_tol * 1.10 + 0.02,
        "capacity-weighted imbalance {imb:.4} exceeds the kernel's ceiling"
    );
    // The double-capacity parts must actually carry more than a fair
    // uniform share between them.
    let heavy: u64 = w[..2].iter().sum();
    let total: u64 = w.iter().sum();
    assert!(
        heavy as f64 > total as f64 * 2.0 / p as f64,
        "2x-capacity parts hold {heavy} of {total}: no load shifted"
    );
}

// ---------------------------------------------------------------------------
// Portfolio battery: the geometric methods against their serial kernels.
// ---------------------------------------------------------------------------

#[test]
fn portfolio_distributed_kernels_match_serial_at_all_proc_counts() {
    let (g, keys) = fig6_quick_graph_with_keys();
    let vwgt: &[u64] = &g.vwgt;
    for &p in &PROC_COUNTS {
        let prev = seed_partition(&g, p);
        let caps = vec![1.0; p];

        let serial_sfc = sfc_partition(&keys, vwgt, p, &caps);
        let dist_sfc = sfc_distributed(
            &keys,
            vwgt,
            &prev,
            None,
            p,
            &caps,
            p,
            MachineModel::sp2(),
            VERTEX_UNITS,
        );
        assert_eq!(dist_sfc.part, serial_sfc, "P={p}: SFC split diverged");

        let serial_diff = sfc_diffuse(&keys, vwgt, &prev, p, &caps);
        let dist_diff = sfc_distributed(
            &keys,
            vwgt,
            &prev,
            Some(&prev),
            p,
            &caps,
            p,
            MachineModel::sp2(),
            VERTEX_UNITS,
        );
        assert_eq!(dist_diff.part, serial_diff, "P={p}: diffusion diverged");

        let serial_knap = knapsack_partition(vwgt, p, &caps);
        let dist_knap =
            knapsack_distributed(vwgt, &prev, p, &caps, p, MachineModel::sp2(), VERTEX_UNITS);
        assert_eq!(dist_knap.part, serial_knap, "P={p}: knapsack diverged");

        // Machine-model invariance: the zero model changes only the clock.
        let zero = sfc_distributed(
            &keys,
            vwgt,
            &prev,
            None,
            p,
            &caps,
            p,
            MachineModel::zero(),
            0.0,
        );
        assert_eq!(zero.part, serial_sfc, "P={p}: SFC depends on the model");
        assert!(
            dist_sfc.makespan > zero.makespan,
            "P={p}: sp2 must cost time"
        );
    }
}

#[test]
fn sfc_split_respects_capacity_shares_on_fig6() {
    let (g, keys) = fig6_quick_graph_with_keys();
    let vwgt: &[u64] = &g.vwgt;
    let total: u64 = vwgt.iter().sum();
    let maxv = *vwgt.iter().max().unwrap();
    for &p in &PROC_COUNTS {
        let caps: Vec<f64> = (0..p).map(|r| if r == 0 { 2.0 } else { 1.0 }).collect();
        let part = sfc_partition(&keys, vwgt, p, &caps);
        let w = part_weights(&g, &part, p);
        let csum: f64 = caps.iter().sum();
        for q in 0..p {
            let share = total as f64 * caps[q] / csum;
            assert!(
                w[q] as f64 <= share + maxv as f64 + 1e-6,
                "P={p}: part {q} weighs {} > share {share} + {maxv}",
                w[q]
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rematch battery: the second-order diffusion and Voronoi balancers
// against their serial kernels — serial ≡ SPMD at every P, machine-model
// invariance, and the P=64 trace invariants.
// ---------------------------------------------------------------------------

#[test]
fn diffusion2_distributed_matches_serial_at_all_proc_counts() {
    let (g, _keys) = fig6_quick_graph_with_keys();
    for &p in &PROC_COUNTS {
        let prev = seed_partition(&g, p);
        let caps = vec![1.0; p];
        let serial = diffusion2_balance(&g, &prev, p, &caps);
        let dist = diffusion2_distributed(
            &g,
            &prev,
            &prev,
            p,
            &caps,
            p,
            MachineModel::sp2(),
            VERTEX_UNITS,
        );
        assert_eq!(dist.part, serial, "P={p}: diffusion2 diverged");
        assert!(dist.makespan > 0.0, "P={p}: partitioning took no time");
        // Machine-model invariance: the zero model changes only the clock.
        let zero = diffusion2_distributed(&g, &prev, &prev, p, &caps, p, MachineModel::zero(), 0.0);
        assert_eq!(zero.part, serial, "P={p}: diffusion2 depends on the model");
        assert!(dist.makespan > zero.makespan, "P={p}: sp2 must cost time");
        // The balancer must actually improve the seeded hotspot.
        let before = imbalance_weighted(&part_weights(&g, &prev, p), &caps);
        let after = imbalance_weighted(&part_weights(&g, &dist.part, p), &caps);
        assert!(
            after <= before + 1e-9,
            "P={p}: diffusion2 worsened imbalance {before:.4} -> {after:.4}"
        );
    }
}

#[test]
fn voronoi_distributed_matches_serial_at_all_proc_counts() {
    let (g, keys) = fig6_quick_graph_with_keys();
    let vwgt: &[u64] = &g.vwgt;
    for &p in &PROC_COUNTS {
        let prev = seed_partition(&g, p);
        let caps = vec![1.0; p];

        // Rebalance flavor (seeded with the previous partition).
        let serial = voronoi_balance(&keys, vwgt, &prev, p, &caps);
        let dist = voronoi_distributed(
            &keys,
            vwgt,
            &prev,
            Some(&prev),
            p,
            &caps,
            p,
            MachineModel::sp2(),
            VERTEX_UNITS,
        );
        assert_eq!(dist.part, serial, "P={p}: voronoi balance diverged");
        assert!(dist.makespan > 0.0, "P={p}: partitioning took no time");

        // From-scratch flavor.
        let serial_fresh = voronoi_partition(&keys, vwgt, p, &caps);
        let dist_fresh = voronoi_distributed(
            &keys,
            vwgt,
            &prev,
            None,
            p,
            &caps,
            p,
            MachineModel::sp2(),
            VERTEX_UNITS,
        );
        assert_eq!(
            dist_fresh.part, serial_fresh,
            "P={p}: voronoi partition diverged"
        );

        // Machine-model invariance.
        let zero = voronoi_distributed(
            &keys,
            vwgt,
            &prev,
            Some(&prev),
            p,
            &caps,
            p,
            MachineModel::zero(),
            0.0,
        );
        assert_eq!(zero.part, serial, "P={p}: voronoi depends on the model");
        assert!(dist.makespan > zero.makespan, "P={p}: sp2 must cost time");
    }
}

/// Trace invariants of the new SPMD bodies at P = 64: the protocol checker
/// finds nothing, and every rank's virtual time is fully accounted by the
/// partition phase breakdown to 1e-9 relative.
#[test]
fn rematch_bodies_are_protocol_clean_and_account_to_1e9_at_p64() {
    let (g, keys) = fig6_quick_graph_with_keys();
    let vwgt: &[u64] = &g.vwgt;
    let p = 64;
    let prev = seed_partition(&g, p);
    let caps = vec![1.0; p];
    let d2 = diffusion2_distributed(
        &g,
        &prev,
        &prev,
        p,
        &caps,
        p,
        MachineModel::sp2(),
        VERTEX_UNITS,
    );
    let vor = voronoi_distributed(
        &keys,
        vwgt,
        &prev,
        Some(&prev),
        p,
        &caps,
        p,
        MachineModel::sp2(),
        VERTEX_UNITS,
    );
    for (name, dist) in [("diffusion2", &d2), ("voronoi", &vor)] {
        let violations = check_protocol(&dist.trace);
        assert!(
            violations.is_empty(),
            "{name}: protocol violations: {violations:?}"
        );
        let summary = dist.trace.summary();
        let full: f64 = summary.ranks.iter().map(|r| r.total()).sum();
        let agg: f64 = dist
            .trace
            .phase_breakdowns()
            .iter()
            .map(|ph| ph.total())
            .sum();
        assert!(
            (full - agg).abs() <= 1e-9 * full.max(1.0),
            "{name}: phase accounting {agg} vs rank accounting {full}"
        );
        // Real traffic flowed: the moved-triple exchange and the weight
        // allreduce are actual messages, not injected time.
        assert!(summary.total_msgs() > 0, "{name}: no messages at P=64");
        assert!(summary.total_words() > 0, "{name}: no words at P=64");
    }
}

/// Acceptance criterion: on the fig6 quick graph at P = 64, SFC boundary
/// diffusion's measured partition makespan undercuts the multilevel
/// repartitioner's by at least 5× — the portfolio's mild-cycle saving.
#[test]
fn diffusion_makespan_undercuts_multilevel_5x_at_p64() {
    let (g, keys) = fig6_quick_graph_with_keys();
    let vwgt: &[u64] = &g.vwgt;
    let p = 64;
    let cfg = PartitionConfig::new(p);
    let prev = seed_partition(&g, p);
    let caps = vec![1.0; p];
    let ml = repartition_distributed(
        &g,
        &prev,
        Some(&prev),
        &cfg,
        &caps,
        p,
        MachineModel::sp2(),
        VERTEX_UNITS,
    );
    let diff = sfc_distributed(
        &keys,
        vwgt,
        &prev,
        Some(&prev),
        p,
        &caps,
        p,
        MachineModel::sp2(),
        VERTEX_UNITS,
    );
    eprintln!(
        "P=64 makespans: multilevel {:.6}s, diffusion {:.6}s",
        ml.makespan, diff.makespan
    );
    assert!(
        diff.makespan * 5.0 <= ml.makespan,
        "diffusion {:.6}s not ≥5× under multilevel {:.6}s",
        diff.makespan,
        ml.makespan
    );
}
