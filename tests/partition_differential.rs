//! Differential battery: the distributed multilevel repartitioner versus the
//! retained serial reference kernel, at P ∈ {2, 8, 64} on a quick-scale
//! Fig-6 mesh.
//!
//! Two regimes are pinned. On the exact-serial path (coarsest graph = input
//! graph) the distributed kernel gathers the problem to rank 0 and runs the
//! very same serial kernel, so the result must be *bit-identical*. On the
//! genuinely multilevel path the two kernels take discretely different
//! matching/refinement decisions, so the contract is qualitative: edge cut
//! within 10% of the serial result and imbalance no worse than the serial
//! result plus a small epsilon.

use plum_mesh::generate::{box_dims_for_elements, box_mesh};
use plum_mesh::DualGraph;
use plum_parsim::MachineModel;
use plum_partition::{
    imbalance_weighted, part_weights, partition_kway, quality, repartition_distributed,
    repartition_kway_weighted, Graph, PartitionConfig,
};

const PROC_COUNTS: [usize; 3] = [2, 8, 64];

/// Work units charged per locally-matched vertex; any positive value — the
/// partition result is machine-model independent by construction.
const VERTEX_UNITS: f64 = 16.0;

/// Quick-scale Fig-6 dual graph (~6000 elements) with a deterministic
/// non-uniform weighting: a contiguous band of elements is 8× heavier, as if
/// a refinement wave had just passed through. The uniform seed partition is
/// therefore imbalanced — exactly the state the engine repartitions from.
fn fig6_quick_graph() -> Graph<'static> {
    let (nx, ny, nz) = box_dims_for_elements(6_000);
    let mesh = box_mesh(nx, ny, nz, [0.0; 3], [1.0; 3]);
    let dual = DualGraph::build(&mesh);
    let mut w = dual.wcomp.clone();
    let n = w.len();
    for x in w.iter_mut().take(n / 5) {
        *x *= 8;
    }
    Graph::from_csr(dual.xadj.clone(), dual.adjncy.clone(), w)
}

/// The "previous" partition: computed on uniform weights, like the partition
/// the engine held before the refinement wave changed the weights.
fn seed_partition(g: &Graph, nparts: usize) -> Vec<u32> {
    let uniform = Graph::from_csr(g.xadj.to_vec(), g.adjncy.to_vec(), vec![1; g.n()]);
    partition_kway(&uniform, &PartitionConfig::new(nparts))
}

#[test]
fn exact_path_is_bit_identical_to_serial_at_all_proc_counts() {
    let g = fig6_quick_graph();
    for &p in &PROC_COUNTS {
        let mut cfg = PartitionConfig::new(p);
        // Stop coarsening immediately: the coarsest graph is the input graph,
        // so the distributed kernel must reproduce the serial kernel exactly.
        cfg.coarsen_to = g.n();
        let prev = seed_partition(&g, p);
        let caps = vec![1.0; p];
        let serial = repartition_kway_weighted(&g, &cfg, &prev, &caps);
        let dist = repartition_distributed(
            &g,
            &prev,
            Some(&prev),
            &cfg,
            &caps,
            p,
            MachineModel::sp2(),
            VERTEX_UNITS,
        );
        assert_eq!(dist.part, serial, "P={p}: exact path diverged from serial");
        assert!(dist.makespan > 0.0, "P={p}: partitioning took no time");
    }
}

#[test]
fn multilevel_cut_and_balance_track_the_serial_reference() {
    let g = fig6_quick_graph();
    for &p in &PROC_COUNTS {
        let cfg = PartitionConfig::new(p);
        let prev = seed_partition(&g, p);
        let caps = vec![1.0; p];
        let serial = repartition_kway_weighted(&g, &cfg, &prev, &caps);
        let dist = repartition_distributed(
            &g,
            &prev,
            Some(&prev),
            &cfg,
            &caps,
            p,
            MachineModel::sp2(),
            VERTEX_UNITS,
        );
        let qs = quality(&g, &serial, p);
        let qd = quality(&g, &dist.part, p);
        eprintln!(
            "P={p}: serial cut {} imb {:.4} | distributed cut {} imb {:.4}",
            qs.cut, qs.imbalance, qd.cut, qd.imbalance
        );
        assert!(
            qd.cut as f64 <= qs.cut as f64 * 1.10,
            "P={p}: distributed cut {} exceeds serial {} by more than 10%",
            qd.cut,
            qs.cut
        );
        assert!(
            qd.imbalance <= qs.imbalance.max(cfg.imbalance_tol) + 0.05,
            "P={p}: distributed imbalance {:.4} vs serial {:.4} (tol {})",
            qd.imbalance,
            qs.imbalance,
            cfg.imbalance_tol
        );
    }
}

#[test]
fn multilevel_result_is_deterministic_and_machine_independent() {
    let g = fig6_quick_graph();
    let p = 8;
    let cfg = PartitionConfig::new(p);
    let prev = seed_partition(&g, p);
    let caps = vec![1.0; p];
    let a = repartition_distributed(
        &g,
        &prev,
        Some(&prev),
        &cfg,
        &caps,
        p,
        MachineModel::sp2(),
        VERTEX_UNITS,
    );
    // Different machine model, different compute charge: same partition.
    let b = repartition_distributed(
        &g,
        &prev,
        Some(&prev),
        &cfg,
        &caps,
        p,
        MachineModel::zero(),
        0.0,
    );
    assert_eq!(a.part, b.part, "partition depends on the machine model");
    assert!(a.makespan > b.makespan, "sp2 run should cost virtual time");
}

#[test]
fn weighted_capacities_shift_load_and_respect_ceilings() {
    let g = fig6_quick_graph();
    let p = 8;
    let cfg = PartitionConfig::new(p);
    let prev = seed_partition(&g, p);
    // Two double-capacity processors, as after a chaos slowdown elsewhere.
    let caps: Vec<f64> = (0..p).map(|r| if r < 2 { 2.0 } else { 1.0 }).collect();
    let dist = repartition_distributed(
        &g,
        &prev,
        Some(&prev),
        &cfg,
        &caps,
        p,
        MachineModel::sp2(),
        VERTEX_UNITS,
    );
    assert_eq!(dist.part.len(), g.n(), "every vertex assigned exactly once");
    assert!(dist.part.iter().all(|&q| (q as usize) < p));
    let w = part_weights(&g, &dist.part, p);
    let imb = imbalance_weighted(&w, &caps);
    assert!(
        imb <= cfg.imbalance_tol * 1.10 + 0.02,
        "capacity-weighted imbalance {imb:.4} exceeds the kernel's ceiling"
    );
    // The double-capacity parts must actually carry more than a fair
    // uniform share between them.
    let heavy: u64 = w[..2].iter().sum();
    let total: u64 = w.iter().sum();
    assert!(
        heavy as f64 > total as f64 * 2.0 / p as f64,
        "2x-capacity parts hold {heavy} of {total}: no load shifted"
    );
}
