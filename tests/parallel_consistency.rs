//! Parallel-vs-serial consistency: the distributed protocols must compute
//! exactly what a sequential observer would.

use plum_core::{parallel_mark, Ownership, PlumConfig, WorkModel};
use plum_mesh::generate::unit_box_mesh;
use plum_mesh::{DualGraph, VertexField};
use plum_parsim::{spmd, MachineModel};
use plum_partition::{partition_kway, Graph, PartitionConfig};
use plum_solver::{edge_error_indicator, initialize_solution, WaveField, NCOMP};

fn marked_setup(nproc: usize) -> (plum_adapt::AdaptiveMesh, Vec<u32>, Vec<f64>) {
    let mesh = unit_box_mesh(4);
    let dual = DualGraph::build(&mesh);
    let graph = Graph::from_csr(dual.xadj.clone(), dual.adjncy.clone(), dual.wcomp.clone());
    let part = partition_kway(&graph, &PartitionConfig::new(nproc));
    let am = plum_adapt::AdaptiveMesh::new(mesh);
    let mut field = VertexField::new(NCOMP, am.mesh.vert_slots());
    initialize_solution(&am.mesh, &mut field, &WaveField::unit_box(), 0.7);
    let error = edge_error_indicator(&am.mesh, &field);
    (am, part, error)
}

#[test]
fn parallel_marking_equals_serial_for_many_proc_counts() {
    for nproc in [1usize, 2, 3, 5, 8, 13] {
        let (am, part, error) = marked_setup(nproc);
        let threshold = am.threshold_for_final_fraction(&error, 0.2);
        let own = Ownership::build(&am, &part, nproc);
        let par = parallel_mark(
            &am,
            &own,
            nproc,
            MachineModel::sp2(),
            &WorkModel::default(),
            &error,
            threshold,
        );
        let mut serial = am.mark_above(&error, threshold);
        am.upgrade_to_fixpoint(&mut serial);
        assert_eq!(
            par.marks.count(),
            serial.count(),
            "P={nproc}: parallel and serial fixpoints differ in size"
        );
        for e in am.mesh.edges() {
            assert_eq!(
                par.marks.is_marked(e),
                serial.is_marked(e),
                "P={nproc}: fixpoints differ at {e}"
            );
        }
    }
}

#[test]
fn marking_time_includes_communication_only_when_shared() {
    let (am, part, error) = marked_setup(4);
    let threshold = am.threshold_for_final_fraction(&error, 0.2);
    let own = Ownership::build(&am, &part, 4);
    let par = parallel_mark(
        &am,
        &own,
        4,
        MachineModel::sp2(),
        &WorkModel::default(),
        &error,
        threshold,
    );
    assert!(par.comm_words > 0, "a 4-way partition must exchange marks");
    assert!(par.time > 0.0);

    let own1 = Ownership::build(&am, &vec![0; am.n_roots()], 1);
    let par1 = parallel_mark(
        &am,
        &own1,
        1,
        MachineModel::sp2(),
        &WorkModel::default(),
        &error,
        threshold,
    );
    assert_eq!(par1.comm_words, 0, "one rank has nobody to talk to");
}

#[test]
fn spmd_collectives_match_serial_reductions() {
    // Cross-check parsim collectives against serial fold on real data sizes.
    let data: Vec<u64> = (0..16).map(|i| (i * 37 + 5) as u64).collect();
    let expect_sum: u64 = data.iter().sum();
    let expect_max: u64 = *data.iter().max().unwrap();
    let d = data.clone();
    let results = spmd(16, MachineModel::sp2(), move |comm| {
        let mine = d[comm.rank()];
        (comm.allreduce_sum_u64(mine), comm.allreduce_max_u64(mine))
    });
    for r in &results {
        assert_eq!(r.value.0, expect_sum);
        assert_eq!(r.value.1, expect_max);
    }
}

#[test]
fn ownership_shared_edge_counts_are_symmetric_totals() {
    let (am, part, _) = marked_setup(4);
    let own = Ownership::build(&am, &part, 4);
    // Every shared edge is counted by each of its owners.
    let per_rank: u64 = (0..4).map(|r| own.shared_edges_of_rank(r)).sum();
    let shared_multiplicity: u64 = (0..am.mesh.edge_slots())
        .map(|slot| {
            let owners = own.ranks_of(plum_mesh::EdgeId(slot as u32)).count() as u64;
            if owners > 1 {
                owners
            } else {
                0
            }
        })
        .sum();
    assert_eq!(per_rank, shared_multiplicity);
    let cfg = PlumConfig::new(4);
    assert_eq!(cfg.nproc, 4);
}
