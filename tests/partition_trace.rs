//! Trace invariants of the executed (distributed) partition phase at P=64.
//!
//! The engine charges the partition phase from real session traffic, so the
//! phase's trace must carry real point-to-point and collective events, every
//! rank's accounted virtual time (compute + wire + wait + injected) must
//! reconstruct the measured phase time exactly, and the protocol checker
//! must accept both the partition trace and the full session timeline.

use plum_core::{Plum, PlumConfig};
use plum_mesh::generate::unit_box_mesh;
use plum_parsim::{check_protocol, TraceEvent};
use plum_solver::WaveField;

/// A P=64 cycle on a mesh big enough (1296 dual vertices > the default
/// coarsening target of 1024) that the engine takes the genuinely
/// multilevel distributed path, not the gathered exact-serial shortcut.
///
/// If `PLUM_TRACE_ARTIFACT` is set, the full session trace is written there
/// (Chrome-trace JSON) *before* any assertion runs, so CI can upload the
/// timeline of a failing run.
fn multilevel_p64_report() -> plum_core::CycleReport {
    let mut plum = Plum::new(unit_box_mesh(6), WaveField::unit_box(), PlumConfig::new(64));
    let report = plum.adaption_cycle(0.2, 0.1);
    if let Ok(path) = std::env::var("PLUM_TRACE_ARTIFACT") {
        std::fs::write(&path, report.traces.session.chrome_json())
            .unwrap_or_else(|e| panic!("writing trace artifact {path}: {e}"));
    }
    report
}

#[test]
fn partition_phase_trace_carries_real_traffic_and_accounts_exactly() {
    let report = multilevel_p64_report();
    assert!(
        report.decision.repartitioned,
        "P=64 cycle must trigger repartitioning"
    );
    assert!(report.times.partition > 0.0);

    let trace = report
        .traces
        .partition
        .as_ref()
        .expect("engine path must record the partition trace");
    assert_eq!(trace.nranks(), 64);

    // Real per-rank message traffic: sends, receives, collectives, and the
    // step-boundary syncs all show up in the raw event streams.
    let mut sends = 0u64;
    let mut recvs = 0u64;
    let mut colls = 0u64;
    let mut syncs = 0u64;
    for stream in &trace.events {
        for ev in stream {
            match ev {
                TraceEvent::Send { .. } => sends += 1,
                TraceEvent::Recv { .. } => recvs += 1,
                TraceEvent::CollectiveEnter { .. } => colls += 1,
                TraceEvent::Sync { .. } => syncs += 1,
                _ => {}
            }
        }
    }
    assert!(sends > 0, "no Send events in the partition trace");
    assert!(recvs > 0, "no Recv events in the partition trace");
    assert!(colls > 0, "no collective events in the partition trace");
    assert!(syncs > 0, "no Sync events in the partition trace");

    // Widened accounting invariant: every rank's compute + wire + wait +
    // injected equals the measured partition phase time (the session aligns
    // all clocks at the step boundary, so the phase time is common).
    let summary = trace.summary();
    for r in &summary.ranks {
        assert!(
            (r.total() - report.times.partition).abs() < 1e-9,
            "rank {}: accounted {} vs measured phase time {}",
            r.rank,
            r.total(),
            report.times.partition
        );
    }

    // The SPMD protocol checker accepts the phase trace on its own.
    let violations = check_protocol(trace);
    assert!(violations.is_empty(), "partition trace: {violations:?}");
}

#[test]
fn full_session_trace_with_distributed_partitioning_passes_protocol_check() {
    let report = multilevel_p64_report();
    let log = &report.traces.session;
    assert_eq!(log.nranks(), 64);
    let violations = check_protocol(log);
    assert!(violations.is_empty(), "session trace: {violations:?}");

    // The session timeline must show the partition phase markers coming
    // from the executed kernel.
    let has_phase = log.events[0]
        .iter()
        .any(|ev| matches!(ev, TraceEvent::PhaseBegin { name, .. } if name == "partition"));
    assert!(has_phase, "session timeline lost the partition phase span");
}
