//! Property-based tests of mesh generation, dual graphs, submesh
//! extraction, and partition structure across random configurations.

use proptest::prelude::*;

use plum_mesh::generate::{box_mesh, rotor_mesh, RotorDomain};
use plum_mesh::geometry::total_volume;
use plum_mesh::{extract_submeshes, DualGraph};
use plum_partition::{partition_kway, quality, Graph, PartitionConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any box mesh is structurally valid, tiles its volume exactly, and its
    /// dual graph is symmetric with max degree 4.
    #[test]
    fn box_meshes_are_valid(nx in 1usize..5, ny in 1usize..5, nz in 1usize..5) {
        let mesh = box_mesh(nx, ny, nz, [0.0; 3], [nx as f64, ny as f64, nz as f64]);
        mesh.validate();
        prop_assert_eq!(mesh.n_elems(), 6 * nx * ny * nz);
        let vol = total_volume(&mesh);
        prop_assert!((vol - (nx * ny * nz) as f64).abs() < 1e-9);
        let dual = DualGraph::build(&mesh);
        dual.validate();
        for v in 0..dual.n() {
            prop_assert!(dual.neighbors(v).len() <= 4);
        }
    }

    /// Rotor meshes keep the box topology under the cylindrical map.
    #[test]
    fn rotor_meshes_are_valid(nr in 2usize..5, nt in 2usize..6, nz in 1usize..4) {
        let mesh = rotor_mesh(nr, nt, nz, RotorDomain::default());
        mesh.validate();
        prop_assert_eq!(mesh.n_elems(), 6 * nr * nt * nz);
        // No element may degenerate under the mapping.
        for e in mesh.elems() {
            prop_assert!(plum_mesh::geometry::elem_volume(&mesh, e) > 1e-12);
        }
    }

    /// Submesh extraction partitions elements exactly, and the sum of local
    /// vertex counts exceeds the global count by the shared copies only.
    #[test]
    fn submesh_extraction_is_a_partition(n in 2usize..4, nparts in 1usize..5) {
        let mesh = plum_mesh::generate::unit_box_mesh(n);
        let dual = DualGraph::build(&mesh);
        let g = Graph::from_csr(dual.xadj.clone(), dual.adjncy.clone(), dual.wcomp.clone());
        let part_by_dual = partition_kway(&g, &PartitionConfig::new(nparts));
        // Map dual order to element slot ids.
        let mut part = vec![0u32; mesh.elem_slots()];
        for (i, &e) in dual.elem_of.iter().enumerate() {
            part[e.idx()] = part_by_dual[i];
        }
        let subs = extract_submeshes(&mesh, &part, nparts);
        let total_elems: usize = subs.iter().map(|s| s.mesh.n_elems()).sum();
        prop_assert_eq!(total_elems, mesh.n_elems());
        for s in &subs {
            s.mesh.validate();
            // Every local vertex maps to a live global vertex.
            for (li, &gv) in s.global_vert.iter().enumerate() {
                prop_assert!(mesh.vert_alive(gv), "local {} → dead {}", li, gv);
            }
            // SPLs never contain the owner itself.
            for spl in &s.vert_spl {
                prop_assert!(spl.iter().all(|&q| (q as usize) < nparts));
            }
        }
        let total_verts: usize = subs.iter().map(|s| s.mesh.n_verts()).sum();
        prop_assert!(total_verts >= mesh.n_verts());
    }

    /// The partitioner always produces a complete, in-range, reasonably
    /// balanced assignment on mesh duals with random weights.
    #[test]
    fn partitions_of_weighted_duals_are_balanced(
        n in 2usize..4,
        nparts in 2usize..6,
        heavy in 1u64..20,
    ) {
        let mesh = plum_mesh::generate::unit_box_mesh(n);
        let dual = DualGraph::build(&mesh);
        let mut vwgt = dual.wcomp.clone();
        // A heavy corner region.
        for (i, &e) in dual.elem_of.iter().enumerate() {
            let c = plum_mesh::geometry::elem_centroid(&mesh, e);
            if c[0] < 0.4 && c[1] < 0.4 {
                vwgt[i] = heavy;
            }
        }
        let g = Graph::from_csr(dual.xadj.clone(), dual.adjncy.clone(), vwgt);
        let part = partition_kway(&g, &PartitionConfig::new(nparts));
        prop_assert!(part.iter().all(|&p| (p as usize) < nparts));
        let q = quality(&g, &part, nparts);
        // Generous bound: vertex weights can be lumpy on tiny graphs.
        let max_single = g.vwgt.iter().copied().max().unwrap() as f64;
        let avg = g.total_vwgt() as f64 / nparts as f64;
        let bound = 1.06 + max_single / avg;
        prop_assert!(q.imbalance <= bound, "imbalance {} > bound {}", q.imbalance, bound);
    }
}
