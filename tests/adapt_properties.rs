//! Property-based tests of the adaption engine's invariants under random
//! marking and refine/coarsen sequences.

use proptest::prelude::*;

use plum_adapt::{AdaptiveMesh, EdgeMarks};
use plum_mesh::generate::unit_box_mesh;
use plum_mesh::geometry::total_volume;

/// Mark a pseudo-random subset of edges from a seed.
fn random_marks(am: &AdaptiveMesh, seed: u64, density_pct: u8) -> EdgeMarks {
    let mut marks = EdgeMarks::new(&am.mesh);
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    for e in am.mesh.edges() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        if (state % 100) < density_pct as u64 {
            marks.mark(e);
        }
    }
    marks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Refinement with arbitrary marks keeps every structural invariant and
    /// preserves total volume; prediction stays exact.
    #[test]
    fn random_refinement_preserves_invariants(seed in 0u64..5000, density in 1u8..60) {
        let mut am = AdaptiveMesh::new(unit_box_mesh(2));
        let vol0 = total_volume(&am.mesh);
        let mut marks = random_marks(&am, seed, density);
        am.upgrade_to_fixpoint(&mut marks);
        prop_assert!(am.marks_are_legal(&marks));
        let pred = am.predict(&marks);
        am.refine(&marks, &mut []);
        am.validate();
        prop_assert_eq!(pred.total_elements as usize, am.mesh.n_elems());
        let vol1 = total_volume(&am.mesh);
        prop_assert!((vol0 - vol1).abs() < 1e-10, "volume {} → {}", vol0, vol1);
    }

    /// Two rounds of refinement followed by aggressive coarsening always
    /// terminates in a valid mesh no smaller than the initial one.
    #[test]
    fn refine_refine_coarsen_stays_valid(seed in 0u64..2000) {
        let mut am = AdaptiveMesh::new(unit_box_mesh(2));
        let n0 = am.mesh.n_elems();
        for round in 0..2 {
            let mut marks = random_marks(&am, seed + round, 25);
            am.upgrade_to_fixpoint(&mut marks);
            am.refine(&marks, &mut []);
            am.validate();
        }
        let mut cmarks = EdgeMarks::new(&am.mesh);
        for e in am.mesh.edges().collect::<Vec<_>>() {
            cmarks.mark(e);
        }
        am.coarsen(&cmarks, &mut []);
        am.validate();
        prop_assert!(am.mesh.n_elems() >= n0, "coarsened past the initial mesh");
        let vol = total_volume(&am.mesh);
        prop_assert!((vol - 1.0).abs() < 1e-10);
    }

    /// Weights always satisfy: wcomp sums to the element count, wremap ≥
    /// wcomp, wremap sums to the forest size.
    #[test]
    fn weights_are_consistent(seed in 0u64..2000, density in 1u8..50) {
        let mut am = AdaptiveMesh::new(unit_box_mesh(2));
        let mut marks = random_marks(&am, seed, density);
        am.upgrade_to_fixpoint(&mut marks);
        am.refine(&marks, &mut []);
        let (wcomp, wremap) = am.weights();
        prop_assert_eq!(wcomp.iter().sum::<u64>() as usize, am.mesh.n_elems());
        prop_assert_eq!(wremap.iter().sum::<u64>() as usize, am.n_tree_nodes());
        for v in 0..wcomp.len() {
            prop_assert!(wremap[v] >= wcomp[v]);
        }
    }
}
