//! End-to-end integration tests: the full Fig.-1 pipeline across all crates.

use plum_core::{Mapper, Plum, PlumConfig};
use plum_mesh::generate::{rotor_mesh, unit_box_mesh, RotorDomain};
use plum_mesh::geometry::total_volume;
use plum_solver::WaveField;

fn plum(nproc: usize, n: usize) -> Plum {
    Plum::new(
        unit_box_mesh(n),
        WaveField::unit_box(),
        PlumConfig::new(nproc),
    )
}

#[test]
fn three_cycles_stay_valid_and_balanced() {
    let mut p = plum(6, 4);
    let initial_volume = total_volume(&p.am.mesh);
    for i in 0..3 {
        let r = p.adaption_cycle(0.15, 0.4);
        p.am.validate();
        assert!(r.growth >= 1.0, "cycle {i} shrank the mesh");
        // Geometry is preserved by refinement.
        let vol = total_volume(&p.am.mesh);
        assert!(
            (vol - initial_volume).abs() < 1e-9 * initial_volume,
            "cycle {i}: volume drifted from {initial_volume} to {vol}"
        );
        // The adopted assignment is never worse than doing nothing.
        assert!(r.wmax_balanced <= r.wmax_unbalanced);
    }
}

#[test]
fn migration_volume_agrees_with_similarity_stats() {
    // Cross-crate invariant: the elements the migration engine actually
    // packs must equal C_total computed from the similarity matrix.
    let mut p = plum(8, 5);
    for _ in 0..2 {
        let r = p.adaption_cycle(0.3, 0.3);
        if let (Some(m), Some(stats)) = (&r.migration, &r.decision.stats) {
            assert_eq!(
                m.elems_moved, stats.total_elems,
                "migrated volume must equal the similarity-matrix prediction"
            );
        }
    }
}

#[test]
fn virtual_times_are_deterministic() {
    let run = || {
        let mut p = plum(4, 3);
        let r = p.adaption_cycle(0.25, 0.2);
        (
            r.times.marking,
            r.times.remap,
            r.counts.elements,
            r.decision.accepted,
        )
    };
    assert_eq!(
        run(),
        run(),
        "same inputs must give identical virtual times"
    );
}

#[test]
fn all_mappers_work_in_the_full_pipeline() {
    for mapper in [Mapper::GreedyMwbg, Mapper::OptimalMwbg, Mapper::OptimalBmcm] {
        let mut cfg = PlumConfig::new(4);
        cfg.mapper = mapper;
        let mut p = Plum::new(unit_box_mesh(4), WaveField::unit_box(), cfg);
        let r = p.adaption_cycle(0.3, 0.1);
        p.am.validate();
        assert!(r.growth > 1.0, "{mapper:?}");
        if r.decision.accepted {
            assert!(r.decision.imbalance_new <= r.decision.imbalance_old);
        }
    }
}

#[test]
fn maxv_metric_pipeline() {
    let mut cfg = PlumConfig::new(4);
    cfg.cost.metric = plum_remap::RemapMetric::MaxV;
    cfg.mapper = Mapper::OptimalBmcm;
    let mut p = Plum::new(unit_box_mesh(4), WaveField::unit_box(), cfg);
    let r = p.adaption_cycle(0.3, 0.1);
    p.am.validate();
    assert!(r.counts.elements > 0);
}

#[test]
fn f_greater_than_one_partitions() {
    let mut cfg = PlumConfig::new(4);
    cfg.partitions_per_proc = 2;
    let mut p = Plum::new(unit_box_mesh(4), WaveField::unit_box(), cfg);
    let r = p.adaption_cycle(0.35, 0.1);
    p.am.validate();
    // Every dual vertex still maps to a valid processor.
    assert!(p.proc_of_root.iter().all(|&x| (x as usize) < 4));
    assert!(r.growth > 1.0);
}

#[test]
fn rotor_geometry_full_pipeline() {
    let mesh = rotor_mesh(8, 12, 4, RotorDomain::default());
    let mut p = Plum::new(mesh, WaveField::rotor(), PlumConfig::new(4));
    let r = p.adaption_cycle(0.2, 0.2);
    p.am.validate();
    assert!(r.growth > 1.0);
}

#[test]
fn rejected_remap_keeps_everything_in_place() {
    let mut cfg = PlumConfig::new(4);
    // Movement is absurdly expensive: every proposal must be rejected.
    cfg.cost.m_words = u64::MAX / 1_000_000;
    cfg.cost.t_iter = 1e-15;
    cfg.cost.t_refine = 0.0;
    let mut p = Plum::new(unit_box_mesh(4), WaveField::unit_box(), cfg);
    let before = p.proc_of_root.clone();
    let r = p.adaption_cycle(0.3, 0.1);
    assert!(!r.decision.accepted);
    assert!(r.migration.is_none());
    assert_eq!(
        p.proc_of_root, before,
        "rejected mapping must not move data"
    );
    p.am.validate();
}

#[test]
fn solver_tracks_the_wave_across_cycles() {
    // On a coarse mesh the explicit kernel attenuates the blob's peak
    // (numerical diffusion), so compare *locations*, not amplitudes: after
    // two cycles the hottest vertex must still sit near the rotating tip.
    let mut p = plum(2, 3);
    for _ in 0..2 {
        p.adaption_cycle(0.1, 0.5);
    }
    let tip = p.wave.tip_position(p.time);
    let hottest =
        p.am.mesh
            .verts()
            .max_by(|&a, &b| p.field.comp(a, 0).partial_cmp(&p.field.comp(b, 0)).unwrap())
            .unwrap();
    let pos = p.am.mesh.vert_pos(hottest);
    let d =
        ((pos[0] - tip[0]).powi(2) + (pos[1] - tip[1]).powi(2) + (pos[2] - tip[2]).powi(2)).sqrt();
    assert!(
        d < 0.45,
        "solution peak at {pos:?} drifted {d} away from the tip {tip:?}"
    );
}
